(* Tests for the serial-system layer: the serial scheduler
   (Section 2.2), read-write objects (Section 2.3), and scripted user
   transactions. *)

open Ioa

let u name = Txn.Seg name
let ta : Txn.t = [ u "a" ]
let tb : Txn.t = [ u "b" ]
let ta1 : Txn.t = [ u "a"; u "a1" ]

(* ---------- serial scheduler ---------- *)

let apply_all st ops =
  List.fold_left
    (fun st a ->
      match Serial.Scheduler.transition st a with
      | Some st' -> st'
      | None -> Alcotest.failf "scheduler rejected %a" Action.pp a)
    st ops

let init = Serial.Scheduler.initial_state

let test_sched_creates_root () =
  (* initially only CREATE(T0) is enabled *)
  match Serial.Scheduler.enabled init with
  | [ Action.Create t ] ->
      Alcotest.(check bool) "creates root" true (Txn.is_root t)
  | other ->
      Alcotest.failf "expected [CREATE(T0)], got %d actions" (List.length other)

let test_sched_create_requires_request () =
  let st = apply_all init [ Action.Create Txn.root ] in
  Alcotest.(check bool) "unrequested create rejected" true
    (Serial.Scheduler.transition st (Action.Create ta) = None)

let test_sched_sibling_rule () =
  let st =
    apply_all init
      [
        Action.Create Txn.root;
        Action.Request_create ta;
        Action.Request_create tb;
        Action.Create ta;
      ]
  in
  (* tb cannot be created while sibling ta is created but not returned *)
  Alcotest.(check bool) "sibling rule blocks" true
    (Serial.Scheduler.transition st (Action.Create tb) = None);
  (* after ta commits, tb can be created *)
  let st =
    apply_all st
      [ Action.Request_commit (ta, Value.Nil); Action.Commit (ta, Value.Nil) ]
  in
  Alcotest.(check bool) "sibling rule unblocks" true
    (Serial.Scheduler.transition st (Action.Create tb) <> None)

let test_sched_commit_needs_children_returned () =
  let st =
    apply_all init
      [
        Action.Create Txn.root;
        Action.Request_create ta;
        Action.Create ta;
        Action.Request_create ta1;
        Action.Request_commit (ta, Value.Nil);
      ]
  in
  (* ta requested commit but its requested child ta1 has not returned *)
  Alcotest.(check bool) "commit blocked by child" true
    (Serial.Scheduler.transition st (Action.Commit (ta, Value.Nil)) = None);
  (* abort the uncreated child, then commit goes through *)
  let st = apply_all st [ Action.Abort ta1 ] in
  Alcotest.(check bool) "commit after child return" true
    (Serial.Scheduler.transition st (Action.Commit (ta, Value.Nil)) <> None)

let test_sched_abort_only_uncreated () =
  let st =
    apply_all init
      [ Action.Create Txn.root; Action.Request_create ta; Action.Create ta ]
  in
  Alcotest.(check bool) "created txn cannot be aborted" true
    (Serial.Scheduler.transition st (Action.Abort ta) = None)

let test_sched_no_double_commit () =
  let st =
    apply_all init
      [
        Action.Create Txn.root;
        Action.Request_create ta;
        Action.Create ta;
        Action.Request_commit (ta, Value.Nil);
        Action.Commit (ta, Value.Nil);
      ]
  in
  Alcotest.(check bool) "no second commit" true
    (Serial.Scheduler.transition st (Action.Commit (ta, Value.Nil)) = None)

let test_sched_commit_value_must_match () =
  let st =
    apply_all init
      [
        Action.Create Txn.root;
        Action.Request_create ta;
        Action.Create ta;
        Action.Request_commit (ta, Value.Int 5);
      ]
  in
  Alcotest.(check bool) "wrong value rejected" true
    (Serial.Scheduler.transition st (Action.Commit (ta, Value.Int 6)) = None);
  Alcotest.(check bool) "right value accepted" true
    (Serial.Scheduler.transition st (Action.Commit (ta, Value.Int 5)) <> None)

let test_sched_root_never_aborts () =
  Alcotest.(check bool) "root abort rejected" true
    (Serial.Scheduler.transition init (Action.Abort Txn.root) = None)

(* ---------- read-write objects ---------- *)

let racc n =
  Txn.child ta (Txn.Access { obj = "o"; kind = Txn.Read; data = Value.Nil; seq = n })

let wacc v n =
  Txn.child ta (Txn.Access { obj = "o"; kind = Txn.Write; data = v; seq = n })

let obj () = Serial.Rw_object.make ~name:"o" ~initial:(Value.Int 0) ()

let step c a =
  match Component.step c a with
  | Some c -> c
  | None -> Alcotest.failf "object rejected %a" Action.pp a

let test_rw_read_returns_data () =
  let c = step (obj ()) (Action.Create (racc 0)) in
  match Component.enabled c with
  | [ Action.Request_commit (t, Value.Int 0) ] ->
      Alcotest.(check bool) "same access" true (Txn.equal t (racc 0))
  | _ -> Alcotest.fail "expected read response with initial value"

let test_rw_write_then_read () =
  let c = obj () in
  let c = step c (Action.Create (wacc (Value.Int 9) 0)) in
  let c = step c (Action.Request_commit (wacc (Value.Int 9) 0, Value.Nil)) in
  let c = step c (Action.Create (racc 1)) in
  match Component.enabled c with
  | [ Action.Request_commit (_, Value.Int 9) ] -> ()
  | _ -> Alcotest.fail "read should see the written value"

let test_rw_read_wrong_value_rejected () =
  let c = step (obj ()) (Action.Create (racc 0)) in
  Alcotest.(check bool) "wrong value rejected" true
    (Component.step c (Action.Request_commit (racc 0, Value.Int 99)) = None)

let test_rw_commit_without_active_rejected () =
  Alcotest.(check bool) "no active access" true
    (Component.step (obj ()) (Action.Request_commit (racc 0, Value.Int 0)) = None)

let test_rw_write_returns_nil () =
  let c = step (obj ()) (Action.Create (wacc (Value.Int 5) 0)) in
  Alcotest.(check bool) "write returns non-nil rejected" true
    (Component.step c (Action.Request_commit (wacc (Value.Int 5) 0, Value.Int 5))
    = None)

let test_rw_data_after () =
  let sched =
    [
      Action.Create (wacc (Value.Int 7) 0);
      Action.Request_commit (wacc (Value.Int 7) 0, Value.Nil);
      Action.Create (wacc (Value.Int 8) 1);
      Action.Request_commit (wacc (Value.Int 8) 1, Value.Nil);
    ]
  in
  Alcotest.(check bool) "last write wins" true
    (Value.equal (Value.Int 8)
       (Serial.Rw_object.data_after ~name:"o" ~initial:(Value.Int 0) sched))

(* ---------- scripted user transactions ---------- *)

let simple_script =
  {
    Serial.User_txn.children =
      [
        Serial.User_txn.Access_child
          (Txn.Access { obj = "o"; kind = Txn.Read; data = Value.Nil; seq = 0 });
        Serial.User_txn.Access_child
          (Txn.Access { obj = "o"; kind = Txn.Write; data = Value.Int 1; seq = 1 });
      ];
    ordered = true;
    eager = false;
    returns = Serial.User_txn.return_all;
  }

let test_user_ordered_sequencing () =
  let c = Serial.User_txn.make ~self:ta simple_script in
  (* before CREATE: nothing enabled *)
  Alcotest.(check int) "asleep" 0 (List.length (Component.enabled c));
  let c = step c (Action.Create ta) in
  (* exactly the first child requestable *)
  (match Component.enabled c with
  | [ Action.Request_create t ] ->
      Alcotest.(check bool) "first child" true (Txn.kind_of t = Some Txn.Read)
  | other -> Alcotest.failf "expected 1 request, got %d" (List.length other));
  match Component.enabled c with
  | [ Action.Request_create child1 ] ->
      let c = step c (Action.Request_create child1) in
      (* second child blocked until first returns *)
      Alcotest.(check int) "second blocked" 0 (List.length (Component.enabled c));
      let c = step c (Action.Commit (child1, Value.Int 0)) in
      (match Component.enabled c with
      | [ Action.Request_create child2 ] ->
          let c = step c (Action.Request_create child2) in
          let c = step c (Action.Abort child2) in
          (* all children returned: request-commit with return_all *)
          (match Component.enabled c with
          | [ Action.Request_commit (t, Value.List [ Value.Int 0; Value.Nil ]) ]
            ->
              Alcotest.(check bool) "self" true (Txn.equal t ta)
          | _ -> Alcotest.fail "expected request-commit with outcome list")
      | _ -> Alcotest.fail "expected second child request")
  | _ -> Alcotest.fail "expected first child request"

let test_user_unordered_offers_all () =
  let script = { simple_script with Serial.User_txn.ordered = false } in
  let c = step (Serial.User_txn.make ~self:ta script) (Action.Create ta) in
  Alcotest.(check int) "both children offered" 2
    (List.length (Component.enabled c))

let test_user_no_commit_root () =
  let c =
    Serial.User_txn.make ~no_commit:true ~self:Txn.root
      { simple_script with Serial.User_txn.children = [] }
  in
  let c = step c (Action.Create Txn.root) in
  Alcotest.(check int) "root never requests commit" 0
    (List.length (Component.enabled c))

let test_make_tree_counts () =
  let nested =
    {
      Serial.User_txn.children =
        [
          Serial.User_txn.Sub ("s1", simple_script);
          Serial.User_txn.Sub ("s2", simple_script);
        ];
      ordered = false;
      eager = false;
      returns = Serial.User_txn.return_nil;
    }
  in
  Alcotest.(check int) "three automata" 3
    (List.length (Serial.User_txn.make_tree ~self:ta nested));
  Alcotest.(check int) "four access children" 4
    (List.length (Serial.User_txn.access_children ~self:ta nested))

(* ---------- end-to-end tiny serial system ---------- *)

let test_tiny_serial_system () =
  (* one user transaction writing then reading one raw object through
     the serial scheduler *)
  let script =
    {
      Serial.User_txn.children = [ Serial.User_txn.Sub ("t", simple_script) ];
      ordered = true;
      eager = false;
      returns = Serial.User_txn.return_nil;
    }
  in
  let components =
    (Serial.Scheduler.make ()
    :: Serial.User_txn.make_tree ~no_commit:true ~self:Txn.root script)
    @ [ Serial.Rw_object.make ~name:"o" ~initial:(Value.Int 0) () ]
  in
  let sys = System.compose components in
  let r =
    System.run ~max_steps:1000
      ~strategy:(System.completion_biased ())
      ~rng:(Qc_util.Prng.create 17) sys
  in
  Alcotest.(check bool) "quiescent" true r.System.quiescent;
  Alcotest.(check bool) "well-formed" true
    (Result.is_ok
       (Wellformed.check
          ~is_access:(fun t -> Txn.obj_of t <> None)
          r.System.schedule))

let suites =
  [
    ( "serial.scheduler",
      [
        Alcotest.test_case "initially creates root" `Quick test_sched_creates_root;
        Alcotest.test_case "create requires request" `Quick
          test_sched_create_requires_request;
        Alcotest.test_case "sibling rule" `Quick test_sched_sibling_rule;
        Alcotest.test_case "commit needs children returned" `Quick
          test_sched_commit_needs_children_returned;
        Alcotest.test_case "abort only uncreated" `Quick
          test_sched_abort_only_uncreated;
        Alcotest.test_case "no double commit" `Quick test_sched_no_double_commit;
        Alcotest.test_case "commit value must match request" `Quick
          test_sched_commit_value_must_match;
        Alcotest.test_case "root never aborts" `Quick test_sched_root_never_aborts;
      ] );
    ( "serial.rw_object",
      [
        Alcotest.test_case "read returns data" `Quick test_rw_read_returns_data;
        Alcotest.test_case "write then read" `Quick test_rw_write_then_read;
        Alcotest.test_case "read with wrong value rejected" `Quick
          test_rw_read_wrong_value_rejected;
        Alcotest.test_case "commit without active rejected" `Quick
          test_rw_commit_without_active_rejected;
        Alcotest.test_case "write returns nil only" `Quick test_rw_write_returns_nil;
        Alcotest.test_case "data_after reconstruction" `Quick test_rw_data_after;
      ] );
    ( "serial.user_txn",
      [
        Alcotest.test_case "ordered sequencing" `Quick test_user_ordered_sequencing;
        Alcotest.test_case "unordered offers all" `Quick
          test_user_unordered_offers_all;
        Alcotest.test_case "root never commits" `Quick test_user_no_commit_root;
        Alcotest.test_case "make_tree counts" `Quick test_make_tree_counts;
      ] );
    ( "serial.system",
      [ Alcotest.test_case "tiny end-to-end run" `Quick test_tiny_serial_system ]
    );
  ]

(* ---------- eager transactions ---------- *)

let test_user_eager_commit_any_time () =
  let script = { simple_script with Serial.User_txn.eager = true } in
  let c = step (Serial.User_txn.make ~self:ta script) (Action.Create ta) in
  (* immediately after creation, both a child request AND the commit
     are on the menu *)
  let enabled = Component.enabled c in
  Alcotest.(check bool) "commit offered immediately" true
    (List.exists
       (function Action.Request_commit (t, _) -> Txn.equal t ta | _ -> false)
       enabled);
  (* committing closes the door on further child requests *)
  match
    List.find_opt
      (function Action.Request_commit _ -> true | _ -> false)
      enabled
  with
  | Some commit ->
      let c = step c commit in
      Alcotest.(check int) "nothing enabled after commit" 0
        (List.length (Component.enabled c))
  | None -> Alcotest.fail "expected a commit"

let test_eager_system_end_to_end () =
  (* eager transactions through the full serial system: the scheduler
     must still hold the COMMIT until requested children return *)
  let script =
    {
      Serial.User_txn.children = [ Serial.User_txn.Sub ("t", { simple_script with Serial.User_txn.eager = true }) ];
      ordered = true;
      eager = false;
      returns = Serial.User_txn.return_nil;
    }
  in
  let components =
    (Serial.Scheduler.make ()
    :: Serial.User_txn.make_tree ~no_commit:true ~self:Txn.root script)
    @ [ Serial.Rw_object.make ~name:"o" ~initial:(Value.Int 0) () ]
  in
  for seed = 1 to 20 do
    let r =
      System.run ~max_steps:1000
        ~strategy:(System.completion_biased ())
        ~rng:(Qc_util.Prng.create seed)
        (System.compose components)
    in
    Alcotest.(check bool) "quiescent" true r.System.quiescent;
    Alcotest.(check bool) "well-formed" true
      (Result.is_ok
         (Wellformed.check
            ~is_access:(fun t -> Txn.obj_of t <> None)
            r.System.schedule))
  done

let eager_suite =
  ( "serial.eager",
    [
      Alcotest.test_case "eager commit offered any time" `Quick
        test_user_eager_commit_any_time;
      Alcotest.test_case "eager system end to end" `Quick
        test_eager_system_end_to_end;
    ] )

let suites = suites @ [ eager_suite ]

(* ---------- scheduler properties ---------- *)

(* drive random serial systems and validate that every scheduler-level
   decision yields whole-schedule well-formedness (the Lynch-Merritt
   "all serial schedules are well-formed" result, sampled) *)
let prop_serial_schedules_wellformed =
  QCheck.Test.make ~count:50 ~name:"serial schedules are well-formed"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Qc_util.Prng.create seed in
      (* a random two-level script over two raw objects *)
      let obj i = Fmt.str "o%d" (i mod 2) in
      let leaf idx =
        let kind = if Qc_util.Prng.bool rng then Txn.Read else Txn.Write in
        let data =
          match kind with
          | Txn.Read -> Value.Nil
          | Txn.Write -> Value.Int (Qc_util.Prng.int rng 100)
        in
        Serial.User_txn.Access_child
          (Txn.Access { obj = obj idx; kind; data; seq = idx })
      in
      let sub name n =
        Serial.User_txn.Sub
          ( name,
            {
              Serial.User_txn.children = List.init n leaf;
              ordered = Qc_util.Prng.bool rng;
              eager = Qc_util.Prng.float rng < 0.3;
              returns = Serial.User_txn.return_all;
            } )
      in
      let root_script =
        {
          Serial.User_txn.children =
            List.init
              (1 + Qc_util.Prng.int rng 3)
              (fun i -> sub (Fmt.str "s%d" i) (1 + Qc_util.Prng.int rng 3));
          ordered = Qc_util.Prng.bool rng;
          eager = false;
          returns = Serial.User_txn.return_nil;
        }
      in
      let components =
        (Serial.Scheduler.make ()
        :: Serial.User_txn.make_tree ~no_commit:true ~self:Txn.root root_script)
        @ [
            Serial.Rw_object.make ~name:"o0" ~initial:(Value.Int 0) ();
            Serial.Rw_object.make ~name:"o1" ~initial:(Value.Int 0) ();
          ]
      in
      let r =
        System.run ~max_steps:2000 ~rng:(Qc_util.Prng.create (seed lxor 77))
          (System.compose components)
      in
      Result.is_ok
        (Wellformed.check ~is_access:(fun t -> Txn.obj_of t <> None)
           r.System.schedule))

let property_suite =
  ( "serial.properties",
    [
      QCheck_alcotest.to_alcotest
        ~rand:(Random.State.make [| 0x5eed |])
        prop_serial_schedules_wellformed;
    ] )

let suites = suites @ [ property_suite ]
