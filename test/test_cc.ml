(* Tests for the concurrency control substrate (Theorem 11): Moss
   nested 2PL, Reed MVTO, the concurrent engine, and the one-copy
   serializability oracle. *)

open Ioa
module Prng = Qc_util.Prng

let u name = Txn.Seg name
let t1 : Txn.t = [ u "t1" ]
let t2 : Txn.t = [ u "t2" ]
let t1a : Txn.t = [ u "t1"; u "a" ]
let t1b : Txn.t = [ u "t1"; u "b" ]

(* ---------- Moss 2PL locks ---------- *)

let test_locks_read_read () =
  let l = Cc.Locks.create () in
  (match Cc.Locks.try_read l ~obj:"o" ~initial:(Value.Int 0) ~who:t1 with
  | Ok v -> Alcotest.(check bool) "initial value" true (Value.equal v (Value.Int 0))
  | Error _ -> Alcotest.fail "read should succeed");
  Alcotest.(check bool) "concurrent read allowed" true
    (Result.is_ok (Cc.Locks.try_read l ~obj:"o" ~initial:(Value.Int 0) ~who:t2))

let test_locks_write_blocks_read () =
  let l = Cc.Locks.create () in
  (match Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 5) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write should succeed");
  Alcotest.(check bool) "other txn read blocked" true
    (Result.is_error (Cc.Locks.try_read l ~obj:"o" ~initial:(Value.Int 0) ~who:t2))

let test_locks_read_blocks_write () =
  let l = Cc.Locks.create () in
  ignore (Cc.Locks.try_read l ~obj:"o" ~initial:(Value.Int 0) ~who:t1);
  Alcotest.(check bool) "other txn write blocked" true
    (Result.is_error
       (Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t2 (Value.Int 1)))

let test_locks_descendant_sees_ancestor_write () =
  let l = Cc.Locks.create () in
  ignore (Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 7));
  (* a child of the writer may read and sees the uncommitted value *)
  match Cc.Locks.try_read l ~obj:"o" ~initial:(Value.Int 0) ~who:t1a with
  | Ok v -> Alcotest.(check bool) "sees parent's write" true (Value.equal v (Value.Int 7))
  | Error _ -> Alcotest.fail "descendant read should succeed"

let test_locks_sibling_conflict_until_commit () =
  let l = Cc.Locks.create () in
  ignore (Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t1a (Value.Int 7));
  (* sibling t1b cannot write while t1a holds the lock *)
  Alcotest.(check bool) "sibling blocked" true
    (Result.is_error
       (Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t1b (Value.Int 8)));
  (* after t1a commits, its lock belongs to t1 (ancestor of t1b) *)
  Cc.Locks.commit l t1a;
  Alcotest.(check bool) "sibling allowed after inheritance" true
    (Result.is_ok
       (Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t1b (Value.Int 8)))

let test_locks_abort_restores () =
  let l = Cc.Locks.create () in
  ignore (Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 7));
  Cc.Locks.abort l t1;
  match Cc.Locks.try_read l ~obj:"o" ~initial:(Value.Int 0) ~who:t2 with
  | Ok v -> Alcotest.(check bool) "restored" true (Value.equal v (Value.Int 0))
  | Error _ -> Alcotest.fail "read should succeed after abort"

let test_locks_top_commit_installs_base () =
  let l = Cc.Locks.create () in
  ignore (Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 7));
  Cc.Locks.commit l t1;
  Alcotest.(check int) "no residual holders" 0
    (List.length (Cc.Locks.residual_holders l));
  match Cc.Locks.try_read l ~obj:"o" ~initial:(Value.Int 0) ~who:t2 with
  | Ok v -> Alcotest.(check bool) "committed value" true (Value.equal v (Value.Int 7))
  | Error _ -> Alcotest.fail "read after commit should succeed"

let test_locks_abort_subtree () =
  let l = Cc.Locks.create () in
  ignore (Cc.Locks.try_write l ~obj:"o" ~initial:(Value.Int 0) ~who:t1a (Value.Int 7));
  (* aborting the parent clears the descendant's locks too *)
  Cc.Locks.abort l t1;
  Alcotest.(check int) "no residual" 0 (List.length (Cc.Locks.residual_holders l))

(* ---------- Reed MVTO ---------- *)

let test_mvto_read_own_write () =
  let m = Cc.Mvto.create () in
  (match Cc.Mvto.try_write m ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 5) with
  | Cc.Mvto.WOk -> ()
  | _ -> Alcotest.fail "write should succeed");
  match Cc.Mvto.try_read m ~obj:"o" ~initial:(Value.Int 0) ~who:t1a with
  | Cc.Mvto.ROk v ->
      Alcotest.(check bool) "own write visible" true (Value.equal v (Value.Int 5))
  | _ -> Alcotest.fail "own read should succeed"

let test_mvto_reader_blocks_on_uncommitted () =
  let m = Cc.Mvto.create () in
  ignore (Cc.Mvto.try_write m ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 5));
  (* t2 (later timestamp) must block on t1's uncommitted version *)
  match Cc.Mvto.try_read m ~obj:"o" ~initial:(Value.Int 0) ~who:t2 with
  | Cc.Mvto.RBlock blockers ->
      Alcotest.(check bool) "blocked on t1" true
        (List.exists (Txn.equal t1) blockers)
  | _ -> Alcotest.fail "expected block"

let test_mvto_read_after_commit () =
  let m = Cc.Mvto.create () in
  ignore (Cc.Mvto.try_write m ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 5));
  Cc.Mvto.commit m t1;
  match Cc.Mvto.try_read m ~obj:"o" ~initial:(Value.Int 0) ~who:t2 with
  | Cc.Mvto.ROk v ->
      Alcotest.(check bool) "committed visible" true (Value.equal v (Value.Int 5))
  | _ -> Alcotest.fail "read should succeed"

let test_mvto_late_write_aborts () =
  let m = Cc.Mvto.create () in
  (* t1 gets ts 1 by reading; t2 gets ts 2 and reads version 0; then
     t1's write would change what t2 already read -> abort *)
  ignore (Cc.Mvto.try_read m ~obj:"o" ~initial:(Value.Int 0) ~who:t1);
  ignore (Cc.Mvto.try_read m ~obj:"o" ~initial:(Value.Int 0) ~who:t2);
  match Cc.Mvto.try_write m ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 9) with
  | Cc.Mvto.WAbort -> ()
  | _ -> Alcotest.fail "late write must abort"

let test_mvto_abort_discards_versions () =
  let m = Cc.Mvto.create () in
  ignore (Cc.Mvto.try_write m ~obj:"o" ~initial:(Value.Int 0) ~who:t1 (Value.Int 5));
  Cc.Mvto.abort m t1;
  Alcotest.(check int) "no residual" 0 (Cc.Mvto.residual m);
  match Cc.Mvto.try_read m ~obj:"o" ~initial:(Value.Int 0) ~who:t2 with
  | Cc.Mvto.ROk v -> Alcotest.(check bool) "initial" true (Value.equal v (Value.Int 0))
  | _ -> Alcotest.fail "read should succeed"

let test_mvto_serial_order_is_ts_order () =
  let m = Cc.Mvto.create () in
  (* touch in order t2 then t1: ts(t2)=1 < ts(t1)=2 *)
  ignore (Cc.Mvto.try_read m ~obj:"o" ~initial:(Value.Int 0) ~who:t2);
  ignore (Cc.Mvto.try_read m ~obj:"p" ~initial:(Value.Int 0) ~who:t1);
  let order = Cc.Mvto.serial_order m [ t1; t2 ] in
  Alcotest.(check bool) "t2 serializes first" true
    (Txn.equal (List.hd order) t2)

(* ---------- engine + oracle ---------- *)

let prop_2pl_serializable =
  QCheck.Test.make ~count:40 ~name:"2PL runs are one-copy serializable"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match Cc.Harness.run_and_check ~mode:`TwoPL ~seed () with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_report e)

let prop_mvto_serializable =
  QCheck.Test.make ~count:40 ~name:"MVTO runs are one-copy serializable"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match Cc.Harness.run_and_check ~mode:`Mvto ~seed () with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_report e)

let test_nocc_violations_found () =
  (* without concurrency control, racing transactions must produce
     detectable violations in a clear majority of runs *)
  let fails = ref 0 in
  for seed = 1 to 20 do
    match Cc.Harness.run_and_check ~mode:`NoCC ~abort_rate:0.0 ~seed () with
    | Ok _ -> ()
    | Error _ -> incr fails
  done;
  Alcotest.(check bool)
    (Fmt.str "violations in %d/20 uncontrolled runs" !fails)
    true (!fails > 10)

let test_engine_concurrency_happens () =
  let r =
    match Cc.Harness.run_and_check ~mode:`TwoPL ~abort_rate:0.0 ~seed:5 () with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "peak concurrency > 1" true (r.Cc.Harness.peak_concurrency > 1)

let test_engine_deterministic () =
  let run () =
    match Cc.Harness.run_and_check ~mode:`TwoPL ~seed:77 () with
    | Ok r -> (r.Cc.Harness.steps, r.committed_tops, r.aborted_nodes, r.events)
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "same seed, same run" true (run () = run ())

let test_engine_no_residual_locks () =
  for seed = 1 to 10 do
    let rng = Prng.create seed in
    let d =
      Cc.Harness.concurrent_root rng (Quorum.Gen.description rng) ~extra_tops:3
    in
    let log = Cc.Harness.run ~seed d in
    Alcotest.(check int)
      (Fmt.str "seed %d residual" seed)
      0 log.Cc.Engine.residual_locks
  done

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "cc.locks",
      [
        Alcotest.test_case "read/read compatible" `Quick test_locks_read_read;
        Alcotest.test_case "write blocks read" `Quick test_locks_write_blocks_read;
        Alcotest.test_case "read blocks write" `Quick test_locks_read_blocks_write;
        Alcotest.test_case "descendant sees ancestor write" `Quick
          test_locks_descendant_sees_ancestor_write;
        Alcotest.test_case "sibling conflict until inheritance" `Quick
          test_locks_sibling_conflict_until_commit;
        Alcotest.test_case "abort restores" `Quick test_locks_abort_restores;
        Alcotest.test_case "top commit installs base" `Quick
          test_locks_top_commit_installs_base;
        Alcotest.test_case "abort clears subtree" `Quick test_locks_abort_subtree;
      ] );
    ( "cc.mvto",
      [
        Alcotest.test_case "read own write" `Quick test_mvto_read_own_write;
        Alcotest.test_case "reader blocks on uncommitted" `Quick
          test_mvto_reader_blocks_on_uncommitted;
        Alcotest.test_case "read after commit" `Quick test_mvto_read_after_commit;
        Alcotest.test_case "late write aborts" `Quick test_mvto_late_write_aborts;
        Alcotest.test_case "abort discards versions" `Quick
          test_mvto_abort_discards_versions;
        Alcotest.test_case "serial order is timestamp order" `Quick
          test_mvto_serial_order_is_ts_order;
      ] );
    ( "cc.theorem11",
      [
        qcheck prop_2pl_serializable;
        qcheck prop_mvto_serializable;
        Alcotest.test_case "no CC yields violations" `Slow
          test_nocc_violations_found;
        Alcotest.test_case "concurrency actually happens" `Quick
          test_engine_concurrency_happens;
        Alcotest.test_case "engine is deterministic" `Quick test_engine_deterministic;
        Alcotest.test_case "no residual locks" `Quick test_engine_no_residual_locks;
      ] );
  ]

(* ---------- deadlock handling ---------- *)

(* Two top-level transactions locking two single-replica items in
   opposite orders: the classic deadlock.  With injection off, any
   abort is a deadlock resolution; every run must still satisfy the
   oracle. *)
let test_deadlock_resolution () =
  let mk_item name =
    Quorum.Item.make ~name ~dms:[ name ^ "_d" ]
      ~config:(Quorum.Config.rowa [ name ^ "_d" ])
      ~initial:(Value.Int 0)
  in
  let wr obj v seq =
    Serial.User_txn.Access_child
      (Txn.Access { obj; kind = Txn.Write; data = Value.Int v; seq })
  in
  let txn name first second =
    Serial.User_txn.Sub
      ( name,
        {
          Serial.User_txn.children = [ wr first 1 0; wr second 2 1 ];
          ordered = true;
          eager = false;
          returns = Serial.User_txn.return_nil;
        } )
  in
  let d =
    {
      Quorum.Description.items = [ mk_item "x"; mk_item "y" ];
      raw_objects = [];
      root_script =
        {
          Serial.User_txn.children = [ txn "t1" "x" "y"; txn "t2" "y" "x" ];
          ordered = false;
          eager = false;
          returns = Serial.User_txn.return_nil;
        };
    }
  in
  let deadlocks = ref 0 and finished = ref 0 in
  for seed = 1 to 40 do
    let log = Cc.Harness.run ~abort_rate:0.0 ~seed d in
    (match Cc.Oracle.check d log with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: %s %s" seed m.Cc.Oracle.what m.detail);
    Alcotest.(check int)
      (Fmt.str "seed %d: no residual locks" seed)
      0 log.Cc.Engine.residual_locks;
    let aborted =
      List.exists (fun (_, o) -> o = Cc.Engine.Aborted) log.Cc.Engine.outcomes
    in
    if aborted then incr deadlocks;
    if List.length log.Cc.Engine.commit_order = 2 then incr finished
  done;
  Alcotest.(check bool)
    (Fmt.str "deadlocks occurred and were resolved (%d/40)" !deadlocks)
    true (!deadlocks > 0);
  Alcotest.(check bool)
    (Fmt.str "many runs commit both transactions (%d/40)" !finished)
    true (!finished > 10)

(* MVTO on the same workload: timestamp ordering resolves the conflict
   by aborting the late writer instead of lock-based victims *)
let test_deadlock_free_mvto () =
  let mk_item name =
    Quorum.Item.make ~name ~dms:[ name ^ "_d" ]
      ~config:(Quorum.Config.rowa [ name ^ "_d" ])
      ~initial:(Value.Int 0)
  in
  let wr obj v seq =
    Serial.User_txn.Access_child
      (Txn.Access { obj; kind = Txn.Write; data = Value.Int v; seq })
  in
  let txn name first second =
    Serial.User_txn.Sub
      ( name,
        {
          Serial.User_txn.children = [ wr first 1 0; wr second 2 1 ];
          ordered = true;
          eager = false;
          returns = Serial.User_txn.return_nil;
        } )
  in
  let d =
    {
      Quorum.Description.items = [ mk_item "x"; mk_item "y" ];
      raw_objects = [];
      root_script =
        {
          Serial.User_txn.children = [ txn "t1" "x" "y"; txn "t2" "y" "x" ];
          ordered = false;
          eager = false;
          returns = Serial.User_txn.return_nil;
        };
    }
  in
  for seed = 1 to 40 do
    let log = Cc.Harness.run ~abort_rate:0.0 ~mode:`Mvto ~seed d in
    match Cc.Oracle.check d log with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: %s %s" seed m.Cc.Oracle.what m.detail
  done

let deadlock_suite =
  ( "cc.deadlock",
    [
      Alcotest.test_case "2PL deadlocks resolved by victim abort" `Quick
        test_deadlock_resolution;
      Alcotest.test_case "MVTO handles the same conflict" `Quick
        test_deadlock_free_mvto;
    ] )

let suites = suites @ [ deadlock_suite ]

(* ---------- why "non-orphan" is necessary ---------- *)

(* Theorem 11 qualifies its guarantee to non-orphan transactions.  The
   qualifier is necessary: an orphan may have read state (e.g. its own
   enclosing transaction's uncommitted writes) that the final serial
   witness never exhibits.  We demonstrate it: replay the witness
   (non-orphan events only, as the oracle does) and check orphan reads
   against it — across enough seeds, some orphan read is inconsistent,
   while (per the oracle, already validated) non-orphan reads never
   are. *)
let test_orphan_reads_can_be_inconsistent () =
  let inconsistent_orphan_reads = ref 0 and orphan_reads = ref 0 in
  for seed = 1 to 60 do
    let rng = Prng.create (7000 + seed) in
    let d =
      Cc.Harness.concurrent_root rng (Quorum.Gen.description rng) ~extra_tops:3
    in
    let log = Cc.Harness.run ~abort_rate:0.05 ~seed d in
    (match Cc.Oracle.check d log with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: %s %s" seed m.Cc.Oracle.what m.detail);
    (* the witness store, built like the oracle builds it *)
    let store = Hashtbl.create 8 in
    List.iter
      (fun (i : Quorum.Item.t) ->
        Hashtbl.replace store i.Quorum.Item.name i.Quorum.Item.initial)
      d.Quorum.Description.items;
    let non_orphan t =
      let rec go anc =
        Txn.is_root anc
        ||
        match List.assoc_opt anc log.Cc.Engine.outcomes with
        | Some (Cc.Engine.Committed _) -> go (Txn.parent anc)
        | _ -> false
      in
      go t
    in
    List.iter
      (fun top ->
        List.iter
          (fun ev ->
            match ev with
            | Cc.Engine.EWrite { top = t'; tm; item; value }
              when Txn.equal t' top && non_orphan tm ->
                Hashtbl.replace store item value
            | _ -> ())
          log.Cc.Engine.events)
      log.Cc.Engine.serial_order;
    (* final witness in hand: compare ORPHAN reads against the value
       the witness store reaches — a crude but telling comparison *)
    List.iter
      (fun ev ->
        match ev with
        | Cc.Engine.ERead { tm; item; value; _ } when not (non_orphan tm) ->
            incr orphan_reads;
            let witness = Hashtbl.find store item in
            if not (Value.equal value witness) then
              incr inconsistent_orphan_reads
        | _ -> ())
      log.Cc.Engine.events
  done;
  Alcotest.(check bool)
    (Fmt.str "orphan reads occurred (%d)" !orphan_reads)
    true (!orphan_reads > 0);
  Alcotest.(check bool)
    (Fmt.str "some orphan reads inconsistent with the witness (%d/%d)"
       !inconsistent_orphan_reads !orphan_reads)
    true
    (!inconsistent_orphan_reads > 0)

let orphan_suite =
  ( "cc.orphans",
    [
      Alcotest.test_case "non-orphan qualifier is necessary" `Slow
        test_orphan_reads_can_be_inconsistent;
    ] )

let suites = suites @ [ orphan_suite ]

(* ---------- snapshot determinism (lint regression) ---------- *)

(* The public snapshots ([committed_values], [residual_holders]) are
   canonically object-sorted: writing the same objects in any order
   must produce identical lists.  Pins the sorted-at-the-boundary
   fixes that made lib/cc lint-clean. *)

let snapshot_bindings =
  List.init 30 (fun i -> (Fmt.str "o%02d" i, Value.Int (7 * i)))

let shuffle_trials rng build reference label =
  for trial = 1 to 5 do
    let got = build (Prng.shuffle rng snapshot_bindings) in
    Alcotest.(check bool)
      (Fmt.str "%s: shuffled insertion %d identical" label trial)
      true (got = reference)
  done

let sorted_by_obj l =
  List.map fst l = List.sort String.compare (List.map fst l)

let test_locks_snapshot_order () =
  let build order =
    let l = Cc.Locks.create () in
    List.iter
      (fun (obj, v) ->
        match Cc.Locks.try_write l ~obj ~initial:(Value.Int 0) ~who:t1a v with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "write should succeed")
      order;
    (* child commit passes the locks to the parent: residual holders *)
    Cc.Locks.commit l t1a;
    let residual = Cc.Locks.residual_holders l in
    Cc.Locks.commit l t1;
    (residual, Cc.Locks.committed_values l)
  in
  let reference = build snapshot_bindings in
  let residual, committed = reference in
  Alcotest.(check int) "all objects committed" 30 (List.length committed);
  Alcotest.(check bool) "committed_values object-sorted" true
    (sorted_by_obj committed);
  Alcotest.(check bool) "residual_holders object-sorted" true
    (sorted_by_obj residual);
  Alcotest.(check bool) "residual holder is the parent" true
    (List.for_all (fun (_, holders) -> holders = [ t1 ]) residual);
  shuffle_trials (Prng.create 11) build reference "locks"

let test_mvto_snapshot_order () =
  let build order =
    let m = Cc.Mvto.create () in
    List.iter
      (fun (obj, v) ->
        match Cc.Mvto.try_write m ~obj ~initial:(Value.Int 0) ~who:t1 v with
        | Cc.Mvto.WOk -> ()
        | _ -> Alcotest.fail "write should succeed")
      order;
    Cc.Mvto.commit m t1;
    Cc.Mvto.committed_values m
  in
  let reference = build snapshot_bindings in
  Alcotest.(check int) "all objects committed" 30 (List.length reference);
  Alcotest.(check bool) "committed_values object-sorted" true
    (sorted_by_obj reference);
  shuffle_trials (Prng.create 13) build reference "mvto"

let snapshot_suite =
  ( "cc.snapshots",
    [
      Alcotest.test_case "locks snapshots insertion-order free" `Quick
        test_locks_snapshot_order;
      Alcotest.test_case "mvto snapshots insertion-order free" `Quick
        test_mvto_snapshot_order;
    ] )

let suites = suites @ [ snapshot_suite ]
