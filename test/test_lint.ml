(* Tests for the determinism lint (lib/lint): fixture sources with
   known violation lines, pragma semantics, the reporters, and the
   static quorum-intersection checker — including a qcheck property
   tying the checker's independent bitmask legality test to
   [Config.legal], and a static/dynamic cross-check against the
   harness. *)

module Report = Lint.Report
module Rules = Lint.Rules
module Qcheck = Lint.Quorum_check
module Config = Quorum.Config
module Prng = Qc_util.Prng

let fixture name = Filename.concat "lint_fixtures" name

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let summarize findings =
  List.map (fun f -> (f.Report.line, f.Report.rule)) findings

let line_rule = Alcotest.(list (pair int string))

let check_fixture name expected =
  let findings = Rules.lint_file (fixture name) in
  List.iter
    (fun f ->
      Alcotest.(check string) "finding carries the fixture path"
        (fixture name) f.Report.file)
    findings;
  Alcotest.check line_rule name expected (summarize findings)

(* ---------- one fixture per rule, exact file:line ---------- *)

let test_effect_ban () =
  check_fixture "effect_ban.ml"
    [
      (4, Rules.rule_effect); (5, Rules.rule_effect); (6, Rules.rule_effect);
    ]

let test_hashtbl_order () =
  check_fixture "hashtbl_order.ml"
    [ (5, Rules.rule_hashtbl); (6, Rules.rule_hashtbl) ]

let test_float_eq () =
  check_fixture "float_eq.ml"
    [ (6, Rules.rule_float); (7, Rules.rule_float); (8, Rules.rule_float) ]

let test_pragma_hygiene () =
  check_fixture "pragma_hygiene.ml"
    [ (4, Rules.rule_unknown_pragma); (7, Rules.rule_unused_pragma) ]

let test_clean_fixture () = check_fixture "clean.ml" []

(* Exempting effects (the lib/util/prng.ml carve-out) silences the
   effect findings — and thereby strands the effect-ok pragma, which
   must then be reported as unused rather than silently dropped. *)
let test_exempt_effects () =
  let findings =
    Rules.lint_file ~exempt_effects:true (fixture "effect_ban.ml")
  in
  Alcotest.check line_rule "exempt file: only the stranded pragma"
    [ (8, Rules.rule_unused_pragma) ]
    (summarize findings)

let test_default_exempt () =
  Alcotest.(check bool) "lib/util/prng.ml exempt" true
    (Rules.default_exempt "lib/util/prng.ml");
  Alcotest.(check bool) "other files not exempt" false
    (Rules.default_exempt "lib/vp/replica.ml")

(* ---------- directory walk + reporters ---------- *)

let all_fixture_findings () =
  match Rules.lint_paths [ "lint_fixtures" ] with
  | Error e -> Alcotest.failf "lint_paths: %s" e
  | Ok findings -> findings

let test_lint_paths_walk () =
  let findings = all_fixture_findings () in
  Alcotest.(check int) "total findings across fixtures" 10
    (List.length findings);
  Alcotest.(check bool) "sorted and deduplicated" true
    (Report.sort findings = findings)

let test_lint_paths_missing () =
  match Rules.lint_paths [ "no/such/path.ml" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing path must be an Error"

let test_reporters () =
  let findings = all_fixture_findings () in
  let text = Report.to_text findings in
  let expect_line = Fmt.str "%s:4:" (fixture "effect_ban.ml") in
  Alcotest.(check bool)
    (Fmt.str "text report mentions %S" expect_line)
    true
    (contains ~affix:expect_line text && contains ~affix:Rules.rule_effect text);
  let json = Report.to_json findings in
  Alcotest.(check bool) "json report carries the count" true
    (contains ~affix:"\"count\":10" json);
  Alcotest.(check string) "json deterministic across runs" json
    (Report.to_json (all_fixture_findings ()))

(* The lint gate itself: the repo's own lib/ tree is clean.  Tests run
   in _build/default/test, so reach the sources through the dune
   project root two levels up. *)
let lib_root = Filename.concat (Filename.concat ".." "..") "lib"

let test_repo_lib_clean () =
  if Sys.file_exists lib_root then
    match Rules.lint_paths [ lib_root ] with
    | Ok [] -> ()
    | Ok findings -> Alcotest.failf "lib/ not clean:\n%s" (Report.to_text findings)
    | Error e -> Alcotest.failf "lint_paths lib/: %s" e

(* ---------- static quorum checker ---------- *)

let find_verdict summary name =
  match
    List.find_opt (fun v -> v.Qcheck.name = name) summary.Qcheck.verdicts
  with
  | Some v -> v
  | None -> Alcotest.failf "no verdict named %s" name

let opt_bool = Alcotest.(option bool)

let test_quorum_checker_runs () =
  match Qcheck.run () with
  | Error s -> Alcotest.failf "violations:@ %a" Qcheck.pp_summary s
  | Ok s ->
      Alcotest.(check int) "catalog size" 131 s.Qcheck.checked;
      Alcotest.(check (list string)) "no violations" [] s.Qcheck.violations;
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (v.Qcheck.name ^ " read/write legal")
            true v.Qcheck.legal_rw)
        s.Qcheck.verdicts

let test_quorum_checker_classics () =
  match Qcheck.run () with
  | Error s -> Alcotest.failf "violations:@ %a" Qcheck.pp_summary s
  | Ok s ->
      (* Majority coteries are non-dominated exactly at odd n
         (Barbara & Garcia-Molina). *)
      Alcotest.check opt_bool "majority-5 non-dominated" (Some true)
        (find_verdict s "majority-5").Qcheck.nd;
      Alcotest.check opt_bool "majority-4 dominated" (Some false)
        (find_verdict s "majority-4").Qcheck.nd;
      (* ROWA's write side {all} is a coterie but dominated for n>1. *)
      Alcotest.check opt_bool "rowa-1 non-dominated" (Some true)
        (find_verdict s "rowa-1").Qcheck.nd;
      Alcotest.check opt_bool "rowa-3 dominated" (Some false)
        (find_verdict s "rowa-3").Qcheck.nd;
      (* RAOW: singleton write-quorums stop pairwise-intersecting for
         n>1 — the paper's point that w/w intersection is not required
         by the replica-consistency proof. *)
      Alcotest.(check bool) "raow-3 write side not pairwise-intersecting"
        false (find_verdict s "raow-3").Qcheck.ww_intersects;
      Alcotest.(check bool) "grid-2x3 writes intersect" true
        (find_verdict s "grid-2x3").Qcheck.ww_intersects

let test_accepts_basic () =
  Alcotest.(check bool) "majority accepted" true
    (Qcheck.accepts (Config.majority [ "a"; "b"; "c"; "d"; "e" ]));
  let disjoint =
    Config.make ~read_quorums:[ [ "a" ] ] ~write_quorums:[ [ "b" ] ]
  in
  Alcotest.(check bool) "disjoint quorums rejected" false
    (Qcheck.accepts disjoint)

(* qcheck: the checker's independent bitmask legality test agrees with
   the list-based [Config.legal] on random generated configurations
   (always legal) and on broken mutants (never legal). *)
let prop_accepts_iff_legal =
  QCheck.Test.make ~count:200
    ~name:"static accepts <=> Config.legal on random configs"
    QCheck.(pair (int_range 0 100_000) (int_range 2 6))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let dms = List.init n (fun i -> Fmt.str "d%d" i) in
      let c = Quorum.Gen.config rng dms in
      let broken =
        Config.make
          ~read_quorums:[ [ "zz" ] ]
          ~write_quorums:c.Config.write_quorums
      in
      Qcheck.accepts c = Config.legal c
      && Config.legal c
      && Qcheck.accepts broken = Config.legal broken
      && not (Qcheck.accepts broken))

(* Static/dynamic cross-check: a description the static checker
   accepts wholesale also survives the full dynamic harness (run the
   system, check Lemmas 5-8 and Theorem 10). *)
let test_static_dynamic_cross_check () =
  let seed = 2026 in
  let d = Quorum.Gen.description (Prng.create seed) in
  List.iter
    (fun (it : Quorum.Item.t) ->
      Alcotest.(check bool)
        (Fmt.str "item %s statically accepted" it.Quorum.Item.name)
        true
        (Qcheck.accepts it.Quorum.Item.config))
    d.Quorum.Description.items;
  match Quorum.Harness.run_and_check ~seed () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "dynamic harness rejected seed %d: %s" seed e

(* ---------- whole-program analyzer (lint.exe analyze) ---------- *)

module Analyze = Lint.Analyze
module Protocol = Store.Protocol
module Replica = Store.Replica

(* The .cmt files live under the dune build context root, at paths
   like lib/store/.store.objs/byte.  Under `dune runtest` the cwd is
   _build/default/test (the root is one level up); under `dune exec`
   from the project root it is the checkout itself. *)
let build_root =
  if Sys.file_exists (Filename.concat "_build" "default") then
    Filename.concat "_build" "default"
  else ".."

let analyze ?only ?exclude prefix =
  match Analyze.run ?only ?exclude ~build_dir:build_root ~src_prefixes:[ prefix ] () with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "analyze %s: %s" prefix e

let summarize3 findings =
  List.map (fun f -> (f.Report.file, (f.Report.line, f.Report.rule))) findings

let file_line_rule = Alcotest.(list (pair string (pair int string)))

let bad_prefix = "test/analyze_fixtures/bad/"
let clean_prefix = "test/analyze_fixtures/clean/"

(* Exact file:line golden findings for every planted bug — one canary
   per pass, plus the coverage-union and deserializer obligations. *)
let bad_golden =
  [
    (bad_prefix ^ "hidden_random.ml", (5, "effect-taint"));
    (bad_prefix ^ "hidden_random.ml", (6, "effect-taint"));
    (bad_prefix ^ "hidden_random.ml", (7, "effect-taint"));
    (bad_prefix ^ "unsorted_locks.ml", (8, "lock-order"));
    (bad_prefix ^ "wildcard_handler.ml", (7, "handler-totality"));
    (bad_prefix ^ "wildcard_handler.ml", (10, "handler-totality"));
    (bad_prefix ^ "wildcard_handler.ml", (18, "handler-totality"));
  ]

let test_analyze_bad_golden () =
  Alcotest.check file_line_rule "planted bugs, exact file:line" bad_golden
    (summarize3 (analyze bad_prefix))

let test_analyze_clean_fixture () =
  Alcotest.check file_line_rule "clean mirror tree" []
    (summarize3 (analyze clean_prefix))

(* The analyze gate itself: the repo's own lib/ tree passes all three
   whole-program passes. *)
let test_analyze_repo_clean () =
  match analyze "lib/" with
  | [] -> ()
  | findings -> Alcotest.failf "lib/ not clean:\n%s" (Report.to_text findings)

(* --only / --exclude keep exactly the selected rules, and removing a
   pass makes its canary go green. *)
let test_analyze_rule_filters () =
  let only_lock = analyze ~only:[ "lock-order" ] bad_prefix in
  Alcotest.check file_line_rule "--only lock-order"
    [ (bad_prefix ^ "unsorted_locks.ml", (8, "lock-order")) ]
    (summarize3 only_lock);
  let without_taint = analyze ~exclude:[ "effect-taint" ] bad_prefix in
  Alcotest.(check bool) "--exclude effect-taint greens its canary" true
    (List.for_all (fun f -> f.Report.rule <> "effect-taint") without_taint);
  Alcotest.(check int) "--exclude drops only that rule" 4
    (List.length without_taint)

(* Report determinism: any input permutation sorts to the same report,
   and duplicate findings collapse. *)
let test_report_shuffle_regression () =
  let findings = analyze bad_prefix in
  let sorted = Report.sort findings in
  List.iteri
    (fun i seed ->
      let shuffled = Prng.shuffle (Prng.create seed) (findings @ findings) in
      Alcotest.check file_line_rule
        (Fmt.str "shuffle %d resorts and dedupes" i)
        (summarize3 sorted)
        (summarize3 (Report.sort shuffled)))
    [ 1; 42; 0xbeef ]

(* ---------- static verdict vs dynamic fuzz ---------- *)

(* A generator over the full wire protocol, batches included.  The
   analyzer proved [Replica.serve] and the codec total over
   [Protocol.msg]; fuzzing random frames through them cross-checks the
   static verdict dynamically. *)
let gen_key = QCheck.Gen.oneofl [ "a"; "b"; "k1"; "k2" ]
let gen_id = QCheck.Gen.oneofl [ "t1"; "t2"; "t3" ]

let gen_ctx st =
  if QCheck.Gen.bool st then
    Some (Obs.Ctx.make ~op:(QCheck.Gen.oneofl [ "read"; "write" ] st)
            ~parent:(QCheck.Gen.int_bound 99 st))
  else None

let gen_kv st = (gen_key st, QCheck.Gen.int_bound 9 st)

let gen_kvv st =
  (gen_key st, QCheck.Gen.int_bound 9 st, QCheck.Gen.int_bound 99 st)

let gen_small_list g st =
  QCheck.Gen.list_size (QCheck.Gen.int_bound 3) g st

let rec gen_msg depth st : Protocol.msg =
  let open QCheck.Gen in
  let rid = int_bound 99 st in
  let key = gen_key st in
  let txid = gen_id st in
  let bal = int_bound 5 st in
  match int_bound (if depth > 0 then 13 else 11) st with
  | 0 -> Protocol.Query_req { rid; key; ctx = gen_ctx st }
  | 1 -> Protocol.Query_rep { rid; key; vn = int_bound 9 st; value = int_bound 99 st }
  | 2 ->
      Protocol.Install_req
        { rid; key; vn = int_bound 9 st; value = int_bound 99 st; ctx = gen_ctx st }
  | 3 -> Protocol.Install_ack { rid; key }
  | 4 ->
      Protocol.Txn_prepare
        {
          rid; txid;
          writes = gen_small_list gen_kv st;
          reads = gen_small_list gen_key st;
          acceptors = gen_small_list gen_id st;
          paxos = bool st;
          ctx = gen_ctx st;
        }
  | 5 ->
      Protocol.Txn_vote
        { rid; txid; yes = bool st; kvs = gen_small_list gen_kvv st }
  | 6 -> Protocol.Txn_p1a { rid; txid; bal }
  | 7 ->
      let accepted =
        if bool st then Some (bal, bool st, gen_small_list gen_kvv st) else None
      in
      Protocol.Txn_p1b { rid; txid; bal; ok = bool st; accepted }
  | 8 ->
      Protocol.Txn_p2a
        { rid; txid; bal; commit = bool st;
          writes = gen_small_list gen_kvv st; ctx = gen_ctx st }
  | 9 -> Protocol.Txn_p2b { rid; txid; bal; ok = bool st }
  | 10 ->
      Protocol.Txn_decide
        { rid; txid; commit = bool st;
          writes = gen_small_list gen_kvv st; ctx = gen_ctx st }
  | 11 -> Protocol.Txn_decide_ack { rid; txid; applied = bool st }
  | 12 -> Protocol.Batch_req { rid; reqs = gen_small_list (gen_msg (depth - 1)) st }
  | _ -> Protocol.Batch_rep { rid; reps = gen_small_list (gen_msg (depth - 1)) st }

let arb_msg =
  QCheck.make ~print:(fun m -> Protocol.to_wire m) (gen_msg 2)

(* The codec the totality pass certified round-trips every frame. *)
let prop_wire_roundtrip =
  QCheck.Test.make ~count:300 ~name:"wire codec round-trips random frames"
    arb_msg
    (fun m ->
      match Protocol.of_wire (Protocol.to_wire m) with
      | Ok m' -> m' = m
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

(* The handler the totality pass certified dispatches every frame
   without a match failure (or any other escape). *)
let prop_handler_total =
  QCheck.Test.make ~count:300 ~name:"replica handles every random frame"
    arb_msg
    (fun m ->
      let t = Replica.create ~name:"fuzz" () in
      let tr = Obs.Trace.create ~enabled:false () in
      match Replica.handle_one t ~tr m with
      | _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "handle_one raised %s"
            (Printexc.to_string e))

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "lint.rules",
      [
        Alcotest.test_case "effect-ban fixture" `Quick test_effect_ban;
        Alcotest.test_case "hashtbl-order fixture" `Quick test_hashtbl_order;
        Alcotest.test_case "float-compare fixture" `Quick test_float_eq;
        Alcotest.test_case "pragma hygiene fixture" `Quick
          test_pragma_hygiene;
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "exempt effects strands pragma" `Quick
          test_exempt_effects;
        Alcotest.test_case "default exemption" `Quick test_default_exempt;
        Alcotest.test_case "directory walk" `Quick test_lint_paths_walk;
        Alcotest.test_case "missing path is an error" `Quick
          test_lint_paths_missing;
        Alcotest.test_case "text and json reporters" `Quick test_reporters;
        Alcotest.test_case "repo lib/ is lint-clean" `Quick
          test_repo_lib_clean;
      ] );
    ( "lint.analyze",
      [
        Alcotest.test_case "planted canaries, exact file:line" `Quick
          test_analyze_bad_golden;
        Alcotest.test_case "clean mirror tree is empty" `Quick
          test_analyze_clean_fixture;
        Alcotest.test_case "repo lib/ passes all passes" `Quick
          test_analyze_repo_clean;
        Alcotest.test_case "--only/--exclude rule filters" `Quick
          test_analyze_rule_filters;
        Alcotest.test_case "report shuffle regression" `Quick
          test_report_shuffle_regression;
        qcheck prop_wire_roundtrip;
        qcheck prop_handler_total;
      ] );
    ( "lint.quorum",
      [
        Alcotest.test_case "checker runs clean" `Quick
          test_quorum_checker_runs;
        Alcotest.test_case "classic strategy verdicts" `Quick
          test_quorum_checker_classics;
        Alcotest.test_case "accepts basics" `Quick test_accepts_basic;
        qcheck prop_accepts_iff_legal;
        Alcotest.test_case "static/dynamic cross-check" `Quick
          test_static_dynamic_cross_check;
      ] );
  ]
