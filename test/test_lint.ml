(* Tests for the determinism lint (lib/lint): fixture sources with
   known violation lines, pragma semantics, the reporters, and the
   static quorum-intersection checker — including a qcheck property
   tying the checker's independent bitmask legality test to
   [Config.legal], and a static/dynamic cross-check against the
   harness. *)

module Report = Lint.Report
module Rules = Lint.Rules
module Qcheck = Lint.Quorum_check
module Config = Quorum.Config
module Prng = Qc_util.Prng

let fixture name = Filename.concat "lint_fixtures" name

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let summarize findings =
  List.map (fun f -> (f.Report.line, f.Report.rule)) findings

let line_rule = Alcotest.(list (pair int string))

let check_fixture name expected =
  let findings = Rules.lint_file (fixture name) in
  List.iter
    (fun f ->
      Alcotest.(check string) "finding carries the fixture path"
        (fixture name) f.Report.file)
    findings;
  Alcotest.check line_rule name expected (summarize findings)

(* ---------- one fixture per rule, exact file:line ---------- *)

let test_effect_ban () =
  check_fixture "effect_ban.ml"
    [
      (4, Rules.rule_effect); (5, Rules.rule_effect); (6, Rules.rule_effect);
    ]

let test_hashtbl_order () =
  check_fixture "hashtbl_order.ml"
    [ (5, Rules.rule_hashtbl); (6, Rules.rule_hashtbl) ]

let test_float_eq () =
  check_fixture "float_eq.ml"
    [ (6, Rules.rule_float); (7, Rules.rule_float); (8, Rules.rule_float) ]

let test_pragma_hygiene () =
  check_fixture "pragma_hygiene.ml"
    [ (4, Rules.rule_unknown_pragma); (7, Rules.rule_unused_pragma) ]

let test_clean_fixture () = check_fixture "clean.ml" []

(* Exempting effects (the lib/util/prng.ml carve-out) silences the
   effect findings — and thereby strands the effect-ok pragma, which
   must then be reported as unused rather than silently dropped. *)
let test_exempt_effects () =
  let findings =
    Rules.lint_file ~exempt_effects:true (fixture "effect_ban.ml")
  in
  Alcotest.check line_rule "exempt file: only the stranded pragma"
    [ (8, Rules.rule_unused_pragma) ]
    (summarize findings)

let test_default_exempt () =
  Alcotest.(check bool) "lib/util/prng.ml exempt" true
    (Rules.default_exempt "lib/util/prng.ml");
  Alcotest.(check bool) "other files not exempt" false
    (Rules.default_exempt "lib/vp/replica.ml")

(* ---------- directory walk + reporters ---------- *)

let all_fixture_findings () =
  match Rules.lint_paths [ "lint_fixtures" ] with
  | Error e -> Alcotest.failf "lint_paths: %s" e
  | Ok findings -> findings

let test_lint_paths_walk () =
  let findings = all_fixture_findings () in
  Alcotest.(check int) "total findings across fixtures" 10
    (List.length findings);
  Alcotest.(check bool) "sorted and deduplicated" true
    (Report.sort findings = findings)

let test_lint_paths_missing () =
  match Rules.lint_paths [ "no/such/path.ml" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing path must be an Error"

let test_reporters () =
  let findings = all_fixture_findings () in
  let text = Report.to_text findings in
  let expect_line = Fmt.str "%s:4:" (fixture "effect_ban.ml") in
  Alcotest.(check bool)
    (Fmt.str "text report mentions %S" expect_line)
    true
    (contains ~affix:expect_line text && contains ~affix:Rules.rule_effect text);
  let json = Report.to_json findings in
  Alcotest.(check bool) "json report carries the count" true
    (contains ~affix:"\"count\":10" json);
  Alcotest.(check string) "json deterministic across runs" json
    (Report.to_json (all_fixture_findings ()))

(* The lint gate itself: the repo's own lib/ tree is clean.  Tests run
   in _build/default/test, so reach the sources through the dune
   project root two levels up. *)
let lib_root = Filename.concat (Filename.concat ".." "..") "lib"

let test_repo_lib_clean () =
  if Sys.file_exists lib_root then
    match Rules.lint_paths [ lib_root ] with
    | Ok [] -> ()
    | Ok findings -> Alcotest.failf "lib/ not clean:\n%s" (Report.to_text findings)
    | Error e -> Alcotest.failf "lint_paths lib/: %s" e

(* ---------- static quorum checker ---------- *)

let find_verdict summary name =
  match
    List.find_opt (fun v -> v.Qcheck.name = name) summary.Qcheck.verdicts
  with
  | Some v -> v
  | None -> Alcotest.failf "no verdict named %s" name

let opt_bool = Alcotest.(option bool)

let test_quorum_checker_runs () =
  match Qcheck.run () with
  | Error s -> Alcotest.failf "violations:@ %a" Qcheck.pp_summary s
  | Ok s ->
      Alcotest.(check int) "catalog size" 131 s.Qcheck.checked;
      Alcotest.(check (list string)) "no violations" [] s.Qcheck.violations;
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (v.Qcheck.name ^ " read/write legal")
            true v.Qcheck.legal_rw)
        s.Qcheck.verdicts

let test_quorum_checker_classics () =
  match Qcheck.run () with
  | Error s -> Alcotest.failf "violations:@ %a" Qcheck.pp_summary s
  | Ok s ->
      (* Majority coteries are non-dominated exactly at odd n
         (Barbara & Garcia-Molina). *)
      Alcotest.check opt_bool "majority-5 non-dominated" (Some true)
        (find_verdict s "majority-5").Qcheck.nd;
      Alcotest.check opt_bool "majority-4 dominated" (Some false)
        (find_verdict s "majority-4").Qcheck.nd;
      (* ROWA's write side {all} is a coterie but dominated for n>1. *)
      Alcotest.check opt_bool "rowa-1 non-dominated" (Some true)
        (find_verdict s "rowa-1").Qcheck.nd;
      Alcotest.check opt_bool "rowa-3 dominated" (Some false)
        (find_verdict s "rowa-3").Qcheck.nd;
      (* RAOW: singleton write-quorums stop pairwise-intersecting for
         n>1 — the paper's point that w/w intersection is not required
         by the replica-consistency proof. *)
      Alcotest.(check bool) "raow-3 write side not pairwise-intersecting"
        false (find_verdict s "raow-3").Qcheck.ww_intersects;
      Alcotest.(check bool) "grid-2x3 writes intersect" true
        (find_verdict s "grid-2x3").Qcheck.ww_intersects

let test_accepts_basic () =
  Alcotest.(check bool) "majority accepted" true
    (Qcheck.accepts (Config.majority [ "a"; "b"; "c"; "d"; "e" ]));
  let disjoint =
    Config.make ~read_quorums:[ [ "a" ] ] ~write_quorums:[ [ "b" ] ]
  in
  Alcotest.(check bool) "disjoint quorums rejected" false
    (Qcheck.accepts disjoint)

(* qcheck: the checker's independent bitmask legality test agrees with
   the list-based [Config.legal] on random generated configurations
   (always legal) and on broken mutants (never legal). *)
let prop_accepts_iff_legal =
  QCheck.Test.make ~count:200
    ~name:"static accepts <=> Config.legal on random configs"
    QCheck.(pair (int_range 0 100_000) (int_range 2 6))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let dms = List.init n (fun i -> Fmt.str "d%d" i) in
      let c = Quorum.Gen.config rng dms in
      let broken =
        Config.make
          ~read_quorums:[ [ "zz" ] ]
          ~write_quorums:c.Config.write_quorums
      in
      Qcheck.accepts c = Config.legal c
      && Config.legal c
      && Qcheck.accepts broken = Config.legal broken
      && not (Qcheck.accepts broken))

(* Static/dynamic cross-check: a description the static checker
   accepts wholesale also survives the full dynamic harness (run the
   system, check Lemmas 5-8 and Theorem 10). *)
let test_static_dynamic_cross_check () =
  let seed = 2026 in
  let d = Quorum.Gen.description (Prng.create seed) in
  List.iter
    (fun (it : Quorum.Item.t) ->
      Alcotest.(check bool)
        (Fmt.str "item %s statically accepted" it.Quorum.Item.name)
        true
        (Qcheck.accepts it.Quorum.Item.config))
    d.Quorum.Description.items;
  match Quorum.Harness.run_and_check ~seed () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "dynamic harness rejected seed %d: %s" seed e

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "lint.rules",
      [
        Alcotest.test_case "effect-ban fixture" `Quick test_effect_ban;
        Alcotest.test_case "hashtbl-order fixture" `Quick test_hashtbl_order;
        Alcotest.test_case "float-compare fixture" `Quick test_float_eq;
        Alcotest.test_case "pragma hygiene fixture" `Quick
          test_pragma_hygiene;
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "exempt effects strands pragma" `Quick
          test_exempt_effects;
        Alcotest.test_case "default exemption" `Quick test_default_exempt;
        Alcotest.test_case "directory walk" `Quick test_lint_paths_walk;
        Alcotest.test_case "missing path is an error" `Quick
          test_lint_paths_missing;
        Alcotest.test_case "text and json reporters" `Quick test_reporters;
        Alcotest.test_case "repo lib/ is lint-clean" `Quick
          test_repo_lib_clean;
      ] );
    ( "lint.quorum",
      [
        Alcotest.test_case "checker runs clean" `Quick
          test_quorum_checker_runs;
        Alcotest.test_case "classic strategy verdicts" `Quick
          test_quorum_checker_classics;
        Alcotest.test_case "accepts basics" `Quick test_accepts_basic;
        qcheck prop_accepts_iff_legal;
        Alcotest.test_case "static/dynamic cross-check" `Quick
          test_static_dynamic_cross_check;
      ] );
  ]
