(* Tests for the shared replication RPC engine (lib/rpc): the
   quorum-gather combinator, pending-table hygiene, bounded retries
   with deterministic backoff, hedged requests, and the store-level
   properties the engine exists for — higher success under loss and a
   clean consistency audit under partitions with retries and hedging
   enabled. *)

module Core = Sim.Core
module Net = Sim.Net
module Engine = Rpc.Engine
module Policy = Rpc.Policy

(* ---------- a minimal echo protocol over Sim.Net ---------- *)

type msg = Req of int | Rep of int | Batch of int * msg list

let rid_of = function Req r | Rep r | Batch (r, _) -> r
let servers = List.init 5 (fun i -> Fmt.str "s%d" i)

let make_world ~seed ?policy ?(loss = 0.0) () =
  let sim = Core.create ~seed in
  let net = Net.create ~sim ~nodes:("c" :: servers) ~loss () in
  List.iter
    (fun s ->
      Net.register net ~node:s (fun ~src msg ->
          match msg with
          | Req r -> Net.send net ~src:s ~dst:src (Rep r)
          | Batch (r, parts) ->
              Net.send net ~src:s ~dst:src
                (Batch
                   ( r,
                     List.filter_map
                       (function Req p -> Some (Rep p) | _ -> None)
                       parts ))
          | Rep _ -> ()))
    servers;
  let eng = Engine.create ~name:"c" ~sim ~net ~rid_of ?policy () in
  Engine.attach eng;
  (sim, net, eng)

(* One operation gathering [k] replies; resolves to `Ok completion
   time, `Exhausted (retries ran out), or `Timeout (deadline). *)
let gather ~sim ~eng ~k ~timeout ?fanout ?(targets = servers) () =
  let outcome = ref `Pending in
  let op_ref = ref None in
  let op =
    Engine.start_op eng ~timeout ~on_timeout:(fun () ->
        (match !op_ref with
        | Some op -> Engine.finish_op eng op
        | None -> ());
        outcome := `Timeout)
  in
  op_ref := Some op;
  let got = ref 0 in
  ignore
    (Engine.call eng ~op ~targets ?fanout
       ~make:(fun rid -> Req rid)
       ~on_reply:(fun ~src:_ _ ->
         incr got;
         if !got >= k then begin
           Engine.finish_op eng op;
           outcome := `Ok (Core.now sim);
           Engine.Done
         end
         else Engine.Continue)
       ~on_exhausted:(fun () ->
         Engine.finish_op eng op;
         outcome := `Exhausted (Core.now sim))
       ());
  outcome

(* ---------- fire-once basics ---------- *)

let test_fire_once_quorum () =
  let sim, _net, eng = make_world ~seed:3 () in
  let outcome = gather ~sim ~eng ~k:3 ~timeout:50.0 () in
  Core.run sim;
  (match !outcome with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "expected quorum of echo replies");
  Alcotest.(check int) "pending table drained" 0 (Engine.pending_count eng)

let test_deadline_cleans_pending () =
  let sim, net, eng = make_world ~seed:4 () in
  List.iter (Net.crash net) servers;
  let outcome = gather ~sim ~eng ~k:3 ~timeout:50.0 () in
  Core.run sim;
  (match !outcome with
  | `Timeout -> ()
  | _ -> Alcotest.fail "expected deadline timeout");
  Alcotest.(check int)
    "pending table drained after timeout" 0
    (Engine.pending_count eng)

(* ---------- retries ---------- *)

let retry_policy =
  Policy.with_retries 2 ~attempt_timeout:10.0 ~backoff:5.0 ~jitter:0.2

let exhaust_time seed =
  let sim, net, eng = make_world ~seed ~policy:retry_policy () in
  List.iter (Net.crash net) servers;
  let outcome = gather ~sim ~eng ~k:3 ~timeout:1000.0 () in
  Core.run sim;
  Alcotest.(check int) "pending drained" 0 (Engine.pending_count eng);
  match !outcome with
  | `Exhausted t -> t
  | _ -> Alcotest.fail "expected exhaustion after max retries"

let test_no_quorum_exhausts_deterministically () =
  (* with no server ever reachable the op fails when attempts run out
     (well before the 1000-unit deadline), at the same virtual time on
     every run of the same seed — jittered backoff comes from the
     engine's own seeded PRNG *)
  let t1 = exhaust_time 7 and t2 = exhaust_time 7 in
  Alcotest.(check (float 0.0)) "same seed, same exhaustion time" t1 t2;
  Alcotest.(check bool) "exhausted before the operation deadline" true
    (t1 < 1000.0)

let test_retry_succeeds_after_heal () =
  (* 3 of 5 servers down: no 3-quorum until s2 recovers at t=25; a
     fire-once call misses it, a retrying call resends and completes *)
  let attempt policy =
    let sim, net, eng = make_world ~seed:9 ?policy () in
    List.iter (Net.crash net) [ "s0"; "s1"; "s2" ];
    Core.schedule sim ~delay:25.0 (fun () -> Net.recover net "s2");
    let outcome = gather ~sim ~eng ~k:3 ~timeout:200.0 () in
    Core.run sim;
    Alcotest.(check int) "pending drained" 0 (Engine.pending_count eng);
    !outcome
  in
  (match attempt None with
  | `Timeout -> ()
  | _ -> Alcotest.fail "fire-once should miss the healed server");
  match attempt (Some (Policy.with_retries 3 ~attempt_timeout:10.0)) with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "retries should reach the healed server"

(* ---------- hedging ---------- *)

let test_hedge_falls_back () =
  (* fanout 1 aimed at a crashed server: without hedging the call
     stalls to the deadline; with a hedge delay the request fans out
     to the rest and completes *)
  let attempt policy =
    let sim, net, eng = make_world ~seed:5 ?policy () in
    Net.crash net "s0";
    let outcome = gather ~sim ~eng ~k:1 ~timeout:60.0 ~fanout:1 () in
    Core.run sim;
    !outcome
  in
  (match attempt None with
  | `Timeout -> ()
  | _ -> Alcotest.fail "fire-once fanout-1 at a dead server should stall");
  match attempt (Some (Policy.with_hedge 5.0)) with
  | `Ok t ->
      Alcotest.(check bool) "hedged completion is prompt" true (t < 60.0)
  | _ -> Alcotest.fail "hedge should fall back to the live servers"

(* ---------- policy validation ---------- *)

let test_policy_validation () =
  let bad p = Alcotest.(check bool) "rejected" true (Result.is_error p) in
  bad (Policy.validate { Policy.default with Policy.max_attempts = 0 });
  bad (Policy.validate { Policy.default with Policy.attempt_timeout = 0.0 });
  bad (Policy.validate { Policy.default with Policy.attempt_timeout = nan });
  bad (Policy.validate { Policy.default with Policy.backoff = -1.0 });
  bad (Policy.validate { Policy.default with Policy.backoff_mult = 0.5 });
  bad (Policy.validate { Policy.default with Policy.jitter = 1.0 });
  bad (Policy.validate { Policy.default with Policy.hedge_delay = Some 0.0 });
  Alcotest.(check bool) "default valid" true
    (Result.is_ok (Policy.validate Policy.default));
  Alcotest.(check bool) "with_retries valid" true
    (Result.is_ok (Policy.validate (Policy.with_retries 4)));
  Alcotest.check_raises "Engine.create rejects an invalid policy"
    (Invalid_argument
       "Rpc.Engine: invalid policy: max_attempts must be >= 1 (got 0)")
    (fun () ->
      let sim = Core.create ~seed:1 in
      let net = Net.create ~sim ~nodes:[ "c" ] () in
      ignore
        (Engine.create ~name:"c" ~sim ~net ~rid_of
           ~policy:{ Policy.default with Policy.max_attempts = 0 }
           ()))

let prop_retry_delay_bounds =
  QCheck.Test.make ~count:200 ~name:"retry_delay stays within jitter bounds"
    QCheck.(pair (int_range 2 8) (float_bound_exclusive 1.0))
    (fun (attempt, u) ->
      let p = Policy.with_retries 7 ~backoff:5.0 ~backoff_mult:2.0 ~jitter:0.2 in
      let d = Policy.retry_delay p ~attempt ~u in
      let base = 5.0 *. (2.0 ** float_of_int (attempt - 2)) in
      d >= base *. 0.8 -. 1e-9 && d <= base *. 1.2 +. 1e-9)

(* ---------- batching: mid-flight disable ---------- *)

let echo_batching ~window =
  {
    Engine.window;
    wrap = (fun ~rid parts -> Batch (rid, parts));
    unwrap = (function Batch (_, parts) -> Some parts | _ -> None);
  }

let test_disable_batching_mid_flight () =
  (* two ops queue their sends under a window far beyond the op
     timeout; disabling batching before the flush timer fires must
     send them immediately (unwrapped) — stranding them until the
     armed timer would time both ops out *)
  let sim, _net, eng = make_world ~seed:11 () in
  Engine.set_batching eng (Some (echo_batching ~window:100.0));
  let o1 = gather ~sim ~eng ~k:3 ~timeout:50.0 () in
  let o2 = gather ~sim ~eng ~k:3 ~timeout:50.0 () in
  Core.schedule sim ~delay:5.0 (fun () -> Engine.set_batching eng None);
  Core.run sim;
  (match (!o1, !o2) with
  | `Ok t1, `Ok t2 ->
      Alcotest.(check bool)
        (Fmt.str "completions are prompt (%.1f, %.1f)" t1 t2)
        true
        (t1 < 50.0 && t2 < 50.0)
  | _ -> Alcotest.fail "both pending ops must complete after the disable");
  Alcotest.(check int) "pending table drained" 0 (Engine.pending_count eng);
  (* and batch replies still in flight complete after a disable: queue
     under a short window, disable after the flush but before the
     replies land *)
  let sim, _net, eng = make_world ~seed:12 () in
  Engine.set_batching eng (Some (echo_batching ~window:1.0));
  let o3 = gather ~sim ~eng ~k:3 ~timeout:50.0 () in
  let o4 = gather ~sim ~eng ~k:3 ~timeout:50.0 () in
  (* the flush fires at t=1; replies are in flight by t=1.5 *)
  Core.schedule sim ~delay:1.5 (fun () -> Engine.set_batching eng None);
  Core.run sim;
  (match (!o3, !o4) with
  | `Ok _, `Ok _ -> ()
  | _ -> Alcotest.fail "in-flight batch replies must still unwrap");
  Alcotest.(check int) "pending table drained" 0 (Engine.pending_count eng)

(* ---------- determinism with retries + loss ---------- *)

let lossy_retry_run seed =
  let sim, _net, eng =
    make_world ~seed ~policy:(Policy.with_retries 2 ~attempt_timeout:8.0)
      ~loss:0.3 ()
  in
  let results = ref [] in
  let rec issue n =
    if n > 0 then
      Core.schedule sim ~delay:5.0 (fun () ->
          let outcome = gather ~sim ~eng ~k:3 ~timeout:80.0 () in
          Core.schedule sim ~delay:81.0 (fun () ->
              results :=
                (match !outcome with
                | `Ok t -> Fmt.str "ok@%g" t
                | `Timeout -> "timeout"
                | `Exhausted t -> Fmt.str "exhausted@%g" t
                | `Pending -> "pending")
                :: !results;
              issue (n - 1)))
  in
  issue 10;
  Core.run sim;
  (!results, Core.now sim, Engine.pending_count eng)

let test_lossy_retry_deterministic () =
  let r1, t1, p1 = lossy_retry_run 21 in
  let r2, t2, p2 = lossy_retry_run 21 in
  Alcotest.(check (list string)) "same outcomes" r1 r2;
  Alcotest.(check (float 0.0)) "same duration" t1 t2;
  Alcotest.(check int) "pending drained" 0 p1;
  Alcotest.(check int) "pending drained" 0 p2

(* ---------- store-level: the engine under the quorum client ---------- *)

let store_replicas = List.init 5 (fun i -> Fmt.str "r%d" i)

let test_store_client_pending_hygiene () =
  (* every replica down: the write times out; nothing may leak from
     the engine's pending table, and the client still answers *)
  let sim = Core.create ~seed:6 in
  let net = Net.create ~sim ~nodes:("c0" :: store_replicas) () in
  let replicas =
    List.map (fun name -> Store.Replica.create ~name ()) store_replicas
  in
  List.iter (fun r -> Store.Replica.attach r ~net) replicas;
  let client =
    Store.Client.create ~name:"c0" ~sim ~net
      ~replicas:(Array.of_list store_replicas)
      ~strategy:(Store.Strategy.majority 5) ~timeout:40.0 ()
  in
  Store.Client.attach client;
  let failed = ref 0 and ok = ref 0 in
  Store.Client.write client ~key:"k" ~value:1
    ~on_done:(fun ~ok:o ~vn:_ ~value:_ ~latency:_ ->
      incr (if o then ok else failed));
  Core.run sim;
  List.iter (Net.crash net) store_replicas;
  Store.Client.write client ~key:"k" ~value:2
    ~on_done:(fun ~ok:o ~vn:_ ~value:_ ~latency:_ ->
      incr (if o then ok else failed));
  Core.run sim;
  Alcotest.(check int) "first write ok" 1 !ok;
  Alcotest.(check int) "second write failed" 1 !failed;
  Alcotest.(check int) "engine pending drained" 0
    (Engine.pending_count client.Store.Client.eng)

let test_retries_raise_availability_under_loss () =
  let run policy =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        targeting = `Quorum;
        policy;
        loss = 0.3;
        workload =
          { Store.Workload.default_spec with ops_per_client = 80; read_fraction = 0.5 };
        seed = 77;
      }
  in
  let base = run Policy.default in
  let retried = run (Policy.with_retries 2) in
  Alcotest.(check bool) "audit clean (fire-once)" true
    (base.Store.Cluster.audit_violations = []);
  Alcotest.(check bool) "audit clean (retries)" true
    (retried.Store.Cluster.audit_violations = []);
  Alcotest.(check bool)
    (Fmt.str "retries improve success rate (%.3f -> %.3f)"
       (Store.Cluster.availability base)
       (Store.Cluster.availability retried))
    true
    (Store.Cluster.availability retried > Store.Cluster.availability base)

let prop_nemesis_partitions_with_retries_audit_clean =
  QCheck.Test.make ~count:8
    ~name:"nemesis partitions + retries + hedging keep the audit clean"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let r =
        Store.Cluster.run
          {
            Store.Cluster.default_params with
            targeting = `Quorum;
            policy = Policy.with_hedge ~base:(Policy.with_retries 2) 12.0;
            (* the partition storm as a harness script — compiles onto
               the identical legacy code path (same PRNG, same digest) *)
            script = Harness.Script.of_partitions 150.0;
            workload =
              { Store.Workload.default_spec with ops_per_client = 60; read_fraction = 0.5 };
            seed;
          }
      in
      match r.Store.Cluster.audit_violations with
      | [] -> true
      | v :: _ -> QCheck.Test.fail_report v)

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "rpc.engine",
      [
        Alcotest.test_case "fire-once quorum gather" `Quick test_fire_once_quorum;
        Alcotest.test_case "deadline cleans pending" `Quick
          test_deadline_cleans_pending;
        Alcotest.test_case "no quorum: deterministic exhaustion" `Quick
          test_no_quorum_exhausts_deterministically;
        Alcotest.test_case "retry succeeds after heal" `Quick
          test_retry_succeeds_after_heal;
        Alcotest.test_case "hedge falls back past a dead server" `Quick
          test_hedge_falls_back;
        Alcotest.test_case "policy validation" `Quick test_policy_validation;
        Alcotest.test_case "disabling batching mid-flight flushes the queue"
          `Quick test_disable_batching_mid_flight;
        qcheck prop_retry_delay_bounds;
        Alcotest.test_case "lossy retries are seed-deterministic" `Quick
          test_lossy_retry_deterministic;
      ] );
    ( "rpc.store",
      [
        Alcotest.test_case "pending hygiene through the store client" `Quick
          test_store_client_pending_hygiene;
        Alcotest.test_case "retries raise availability under loss" `Slow
          test_retries_raise_availability_under_loss;
        qcheck prop_nemesis_partitions_with_retries_audit_clean;
      ] );
  ]
