(* Tests for the fixed quorum consensus algorithm (paper Section 3):
   configurations, TMs, system B/A construction, the Lemma 6/7/8
   invariant checkers, and the Theorem 10 simulation — including
   property-based randomized validation and checker-sensitivity
   (mutation) tests. *)

open Ioa
module Config = Quorum.Config
module Item = Quorum.Item
module Prng = Qc_util.Prng

(* ---------- configurations ---------- *)

let dms5 = [ "d0"; "d1"; "d2"; "d3"; "d4" ]

let test_config_legal_families () =
  List.iter
    (fun (name, c) ->
      Alcotest.(check bool) (name ^ " legal") true (Config.legal c))
    [
      ("rowa", Config.rowa dms5);
      ("raow", Config.raow dms5);
      ("majority", Config.majority dms5);
      ( "weighted",
        Config.weighted
          ~votes:[ ("d0", 2); ("d1", 1); ("d2", 1) ]
          ~read_threshold:2 ~write_threshold:3 );
      ("grid", Config.grid ~rows:2 ~cols:2 [ "d0"; "d1"; "d2"; "d3" ]);
    ]

let test_config_illegal () =
  let c =
    Config.make ~read_quorums:[ [ "d0" ] ] ~write_quorums:[ [ "d1" ] ]
  in
  Alcotest.(check bool) "disjoint quorums illegal" false (Config.legal c);
  Alcotest.(check bool) "empty read side illegal" false
    (Config.legal (Config.make ~read_quorums:[] ~write_quorums:[ [ "d0" ] ]))

let test_config_covered () =
  let c = Config.majority [ "a"; "b"; "c" ] in
  Alcotest.(check bool) "two of three covers" true
    (Config.read_covered c [ "a"; "c" ]);
  Alcotest.(check bool) "one of three does not" false
    (Config.read_covered c [ "b" ]);
  Alcotest.(check bool) "superset covers" true
    (Config.write_covered c [ "a"; "b"; "c" ])

let test_weighted_thresholds () =
  Alcotest.check_raises "r+w <= v rejected"
    (Invalid_argument
       "Config.weighted: r(1) + w(3) must exceed total votes (4)") (fun () ->
      ignore
        (Config.weighted
           ~votes:[ ("d0", 2); ("d1", 1); ("d2", 1) ]
           ~read_threshold:1 ~write_threshold:3))

let test_grid_dimensions () =
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Config.grid: |dms| must equal rows * cols") (fun () ->
      ignore (Config.grid ~rows:2 ~cols:2 [ "a"; "b"; "c" ]))

let test_majority_sizes () =
  let c = Config.majority dms5 in
  List.iter
    (fun q -> Alcotest.(check int) "majority quorum size" 3 (List.length q))
    (c.Config.read_quorums @ c.Config.write_quorums)

(* qcheck: every generated configuration family is legal *)
let prop_gen_configs_legal =
  QCheck.Test.make ~count:200 ~name:"generated configurations are legal"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 5 in
      let dms = List.init n (fun i -> Fmt.str "d%d" i) in
      Config.legal (Quorum.Gen.config rng dms))

(* qcheck: weighted voting with r + w > v is always legal *)
let prop_weighted_legal =
  QCheck.Test.make ~count:200 ~name:"weighted voting legality"
    QCheck.(pair (int_range 0 10_000) (int_range 1 5))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let votes = List.init n (fun i -> (Fmt.str "d%d" i, 1 + Prng.int rng 3)) in
      let total = List.fold_left (fun a (_, v) -> a + v) 0 votes in
      let r = 1 + Prng.int rng total in
      let w = total - r + 1 in
      Config.legal (Config.weighted ~votes ~read_threshold:r ~write_threshold:w))

(* ---------- items and descriptions ---------- *)

let test_item_validation () =
  Alcotest.check_raises "illegal config rejected"
    (Invalid_argument "Item.make x: configuration is not legal") (fun () ->
      ignore
        (Item.make ~name:"x" ~dms:[ "d0"; "d1" ]
           ~config:(Config.make ~read_quorums:[ [ "d0" ] ] ~write_quorums:[ [ "d1" ] ])
           ~initial:Value.Nil))

let test_description_overlapping_dms () =
  let mk name dms =
    Item.make ~name ~dms ~config:(Config.majority dms) ~initial:(Value.Int 0)
  in
  let d =
    {
      Quorum.Description.items = [ mk "x" [ "d0"; "d1" ]; mk "y" [ "d1"; "d2" ] ];
      raw_objects = [];
      root_script =
        { Serial.User_txn.children = []; ordered = true;
      eager = false; returns = Serial.User_txn.return_nil };
    }
  in
  Alcotest.(check bool) "overlap rejected" true
    (Result.is_error (Quorum.Description.validate d))

(* ---------- deterministic scenario ---------- *)

let scenario_description config_of =
  let item =
    Item.make ~name:"x" ~dms:[ "d0"; "d1"; "d2" ]
      ~config:(config_of [ "d0"; "d1"; "d2" ])
      ~initial:(Value.Int 0)
  in
  let script =
    {
      Serial.User_txn.children =
        [
          Serial.User_txn.Sub
            ( "t1",
              {
                Serial.User_txn.children =
                  [
                    Serial.User_txn.Access_child
                      (Txn.Access
                         { obj = "x"; kind = Txn.Write; data = Value.Int 42; seq = 0 });
                    Serial.User_txn.Access_child
                      (Txn.Access
                         { obj = "x"; kind = Txn.Read; data = Value.Nil; seq = 1 });
                  ];
                ordered = true;
                eager = false;
                returns = Serial.User_txn.return_all;
              } );
        ];
      ordered = true;
      eager = false;
      returns = Serial.User_txn.return_nil;
    }
  in
  { Quorum.Description.items = [ item ]; raw_objects = []; root_script = script }

(* write 42 then read must yield 42, under every configuration family *)
let test_write_then_read_families () =
  List.iter
    (fun (name, config_of) ->
      let d = scenario_description config_of in
      let ok = ref 0 in
      for seed = 1 to 20 do
        let run = Quorum.Harness.run_b ~abort_rate:0.0 ~seed d in
        (match Quorum.Harness.check_all d run.System.schedule with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" name e);
        (* when the read-TM committed, it must have returned 42 *)
        List.iter
          (fun a ->
            match a with
            | Action.Request_commit (t, v)
              when Txn.obj_of t = Some "x" && Txn.kind_of t = Some Txn.Read ->
                if Value.equal v (Value.Int 42) then incr ok
                else Alcotest.failf "%s: read returned %a" name Value.pp v
            | _ -> ())
          run.System.schedule
      done;
      Alcotest.(check bool)
        (name ^ ": some reads completed")
        true (!ok > 0))
    [
      ("rowa", Config.rowa);
      ("raow", Config.raow);
      ("majority", Config.majority);
    ]

(* ---------- logical state definitions ---------- *)

let test_logical_definitions () =
  let d = scenario_description Config.majority in
  let item = List.hd d.Quorum.Description.items in
  let run = Quorum.Harness.run_b ~abort_rate:0.0 ~seed:3 d in
  let sched = run.System.schedule in
  Alcotest.(check bool) "quiescent" true run.System.quiescent;
  Alcotest.(check bool) "logical state is 42" true
    (Value.equal (Value.Int 42) (Quorum.Logical.logical_state item sched));
  Alcotest.(check int) "current vn is 1" 1 (Quorum.Logical.current_vn item sched);
  Alcotest.(check int) "access sequence length 4 (two TMs)" 4
    (List.length (Quorum.Logical.access_sequence item sched));
  (* DM states: a write quorum at vn 1 with value 42 *)
  let dm_states = Quorum.Logical.dm_states item sched in
  let at1 = List.filter (fun (_, (vn, _)) -> vn = 1) dm_states in
  Alcotest.(check bool) "at least 2 DMs at vn 1 (majority)" true
    (List.length at1 >= 2);
  List.iter
    (fun (dm, (_, v)) ->
      Alcotest.(check bool) (dm ^ " holds 42") true (Value.equal v (Value.Int 42)))
    at1

(* ---------- invariant checkers: sensitivity (mutation tests) ---------- *)

let base_run seed =
  let rng = Prng.create seed in
  let d = Quorum.Gen.description rng in
  let run = Quorum.Harness.run_b ~abort_rate:0.05 ~seed:(seed * 7) d in
  (d, run.System.schedule)

let test_mutation_read_value_caught () =
  let d, beta = base_run 99 in
  let is_read_tm t =
    match Quorum.Description.role_of d t with
    | Some (Quorum.Description.Tm (_, Txn.Read)) -> true
    | _ -> false
  in
  let mutated =
    List.map
      (fun a ->
        match a with
        | Action.Request_commit (t, _) when is_read_tm t ->
            Action.Request_commit (t, Value.Int (-1))
        | a -> a)
      beta
  in
  Alcotest.(check bool) "base passes" true
    (Result.is_ok (Quorum.Harness.check_all d beta));
  Alcotest.(check bool) "corrupted read caught" true
    (Result.is_error (Quorum.Harness.check_all d mutated))

let test_mutation_missing_dm_caught () =
  (* whether erasing one DM's operations breaks an invariant depends
     on which quorums the run actually used; over enough random runs
     it must be caught at least once *)
  let caught = ref 0 in
  for seed = 90 to 110 do
    let d, beta = base_run seed in
    let dm0 = List.hd (List.hd d.Quorum.Description.items).Item.dms in
    let mutated =
      List.filter
        (fun a ->
          match a with
          | Action.Request_commit (t, _) | Action.Create t ->
              not (Txn.obj_of t = Some dm0)
          | _ -> true)
        beta
    in
    if
      List.length mutated < List.length beta
      && Result.is_error (Quorum.Harness.check_all d mutated)
    then incr caught
  done;
  Alcotest.(check bool) "erased DM ops caught at least once" true (!caught > 0)

let test_mutation_duplicate_tm_create_caught () =
  (* duplicating a TM CREATE violates Lemma 6 alternation *)
  let d, beta = base_run 42 in
  let is_tm t =
    match Quorum.Description.role_of d t with
    | Some (Quorum.Description.Tm _) -> true
    | _ -> false
  in
  let dup = ref false in
  let mutated =
    List.concat_map
      (fun a ->
        match a with
        | Action.Create t when is_tm t && not !dup ->
            dup := true;
            [ a; a ]
        | a -> [ a ])
      beta
  in
  if !dup then
    Alcotest.(check bool) "duplicated TM create caught" true
      (Result.is_error (Quorum.Harness.check_all d mutated))

(* ---------- property: the full pipeline on random systems ---------- *)

let prop_random_systems_correct =
  QCheck.Test.make ~count:60
    ~name:"Lemmas 5-8 + Theorem 10 hold on random serial executions"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match Quorum.Harness.run_and_check ~seed () with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_report e)

let prop_theorem10_projection_clean =
  QCheck.Test.make ~count:40
    ~name:"Theorem 10 projection removes exactly the replica accesses"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let d = Quorum.Gen.description rng in
      let run = Quorum.Harness.run_b ~abort_rate:0.1 ~seed d in
      let beta = run.System.schedule in
      let alpha = Quorum.Simulation.project d beta in
      List.length alpha <= List.length beta
      && List.for_all
           (fun a ->
             not (Quorum.Description.is_replica_access d (Action.txn a)))
           alpha)

(* a run with zero aborts and quiescence commits every top-level txn *)
let test_no_abort_run_commits_everything () =
  let d = scenario_description Config.rowa in
  let run = Quorum.Harness.run_b ~abort_rate:0.0 ~seed:5 d in
  Alcotest.(check bool) "quiescent" true run.System.quiescent;
  let commits =
    List.filter
      (function
        | Action.Commit (t, _) -> List.length t = 1
        | _ -> false)
      run.System.schedule
  in
  Alcotest.(check int) "one top-level commit" 1 (List.length commits)

(* ---------- edge cases ---------- *)

(* the checks are prefix-closed: truncating a run mid-flight must
   still pass everything (Theorem 10 holds for ALL schedules of B,
   complete or not) *)
let test_truncated_runs_pass () =
  for seed = 1 to 10 do
    let rng = Prng.create (300 + seed) in
    let d = Quorum.Gen.description rng in
    List.iter
      (fun max_steps ->
        let run = Quorum.Harness.run_b ~max_steps ~seed d in
        match Quorum.Harness.check_all d run.System.schedule with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d steps %d: %s" seed max_steps e)
      [ 5; 17; 63 ]
  done

(* an item on a single DM degenerates to the unreplicated case *)
let test_single_dm_item () =
  let d = scenario_description (fun dms -> Config.rowa dms) in
  let d =
    {
      d with
      Quorum.Description.items =
        [
          Item.make ~name:"x" ~dms:[ "d_only" ]
            ~config:(Config.rowa [ "d_only" ])
            ~initial:(Value.Int 0);
        ];
    }
  in
  for seed = 1 to 5 do
    let run = Quorum.Harness.run_b ~abort_rate:0.0 ~seed d in
    match Quorum.Harness.check_all d run.System.schedule with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

(* deep nesting: five levels of subtransactions around one access *)
let test_deep_nesting () =
  let rec nest depth =
    if depth = 0 then
      {
        Serial.User_txn.children =
          [
            Serial.User_txn.Access_child
              (Txn.Access { obj = "x"; kind = Txn.Write; data = Value.Int 5; seq = 0 });
            Serial.User_txn.Access_child
              (Txn.Access { obj = "x"; kind = Txn.Read; data = Value.Nil; seq = 1 });
          ];
        ordered = true;
        eager = false;
        returns = Serial.User_txn.return_all;
      }
    else
      {
        Serial.User_txn.children =
          [ Serial.User_txn.Sub (Fmt.str "level%d" depth, nest (depth - 1)) ];
        ordered = true;
        eager = false;
        returns = Serial.User_txn.return_all;
      }
  in
  let d =
    {
      Quorum.Description.items =
        [
          Item.make ~name:"x" ~dms:[ "d0"; "d1"; "d2" ]
            ~config:(Config.majority [ "d0"; "d1"; "d2" ])
            ~initial:(Value.Int 0);
        ];
      raw_objects = [];
      root_script = nest 5;
    }
  in
  let run = Quorum.Harness.run_b ~abort_rate:0.0 ~seed:9 d in
  Alcotest.(check bool) "quiescent" true run.System.quiescent;
  match Quorum.Harness.check_all d run.System.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* the two independent logical-state computations agree *)
let test_logical_state_cross_check () =
  for seed = 1 to 15 do
    let rng = Prng.create (500 + seed) in
    let d = Quorum.Gen.description rng in
    let run = Quorum.Harness.run_b ~seed d in
    let via_invariants =
      Quorum.Invariants.final_logical_states d run.System.schedule
    in
    List.iter
      (fun (i : Item.t) ->
        let via_logical = Quorum.Logical.logical_state i run.System.schedule in
        match List.assoc_opt i.Item.name via_invariants with
        | Some v ->
            Alcotest.(check bool)
              (Fmt.str "seed %d item %s" seed i.Item.name)
              true (Value.equal v via_logical)
        | None -> Alcotest.fail "missing item")
      d.Quorum.Description.items
  done

(* a TM that exhausts its access attempts (all aborted) stalls without
   violating anything: the run simply never quiesces for that branch *)
let test_stuck_tm_still_sound () =
  let d = scenario_description Config.rowa in
  (* abort_rate 1.0: the scheduler aborts whenever possible *)
  for seed = 1 to 5 do
    let run = Quorum.Harness.run_b ~abort_rate:1.0 ~seed d in
    match Quorum.Harness.check_all d run.System.schedule with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

(* ---------- exhaustive exploration (small instances) ---------- *)

let tiny_description config_of dms ops =
  let item =
    Item.make ~name:"x" ~dms ~config:(config_of dms) ~initial:(Value.Int 0)
  in
  {
    Quorum.Description.items = [ item ];
    raw_objects = [];
    root_script =
      {
        Serial.User_txn.children =
          [
            Serial.User_txn.Sub
              ( "t",
                {
                  Serial.User_txn.children = ops;
                  ordered = true;
                  eager = false;
                  returns = Serial.User_txn.return_all;
                } );
          ];
        ordered = true;
        eager = false;
        returns = Serial.User_txn.return_nil;
      };
  }

let tw v seq =
  Serial.User_txn.Access_child
    (Txn.Access { obj = "x"; kind = Txn.Write; data = Value.Int v; seq })

let tr seq =
  Serial.User_txn.Access_child
    (Txn.Access { obj = "x"; kind = Txn.Read; data = Value.Nil; seq })

let test_exhaustive_no_aborts () =
  (* every abort-free schedule of the 2-DM majority write+read system *)
  let d = tiny_description Config.majority [ "d0"; "d1" ] [ tw 1 0; tr 1 ] in
  let s = Quorum.Explore.check_description ~budget:1_000_000 d in
  Alcotest.(check bool) "exhausted" true s.Quorum.Explore.exhausted;
  Alcotest.(check bool) "no violation" true (s.violation = None);
  Alcotest.(check bool) "non-trivial space" true (s.schedules >= 1000)

let test_exhaustive_with_aborts () =
  (* every schedule, aborts included, of the 2-DM rowa write system *)
  let d = tiny_description Config.rowa [ "d0"; "d1" ] [ tw 1 0 ] in
  let s =
    Quorum.Explore.check_description ~budget:1_000_000 ~include_aborts:true d
  in
  Alcotest.(check bool) "exhausted" true s.Quorum.Explore.exhausted;
  Alcotest.(check bool) "no violation" true (s.violation = None);
  Alcotest.(check bool) "thousands of schedules" true (s.schedules > 1000)

let test_exhaustive_budget_respected () =
  let d = tiny_description Config.rowa [ "d0"; "d1" ] [ tw 1 0; tr 1 ] in
  let s = Quorum.Explore.check_description ~budget:500 d in
  Alcotest.(check bool) "not exhausted under tiny budget" false
    s.Quorum.Explore.exhausted;
  Alcotest.(check bool) "stopped near budget" true (s.prefixes <= 501)

let test_exhaustive_detects_violations () =
  (* plumbing check: a checker that rejects read-TM commits must
     surface a violation with the offending prefix *)
  let d = tiny_description Config.rowa [ "d0" ] [ tw 1 0; tr 1 ] in
  let checker =
    {
      Quorum.Explore.init = ();
      step =
        (fun () a ->
          match a with
          | Action.Request_commit (t, _)
            when Txn.kind_of t = Some Txn.Read && Txn.obj_of t = Some "x" ->
              Error "synthetic violation"
          | _ -> Ok ());
    }
  in
  let s =
    Quorum.Explore.run ~filter:Quorum.Explore.no_aborts
      (Quorum.System_b.build ~max_attempts:1 d)
      checker
  in
  match s.Quorum.Explore.violation with
  | Some (prefix, msg) ->
      Alcotest.(check string) "message" "synthetic violation" msg;
      Alcotest.(check bool) "non-empty prefix" true (List.length prefix > 0)
  | None -> Alcotest.fail "expected a violation"

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "quorum.config",
      [
        Alcotest.test_case "constructor families legal" `Quick
          test_config_legal_families;
        Alcotest.test_case "illegal configurations" `Quick test_config_illegal;
        Alcotest.test_case "coverage predicate" `Quick test_config_covered;
        Alcotest.test_case "weighted threshold validation" `Quick
          test_weighted_thresholds;
        Alcotest.test_case "grid dimension validation" `Quick test_grid_dimensions;
        Alcotest.test_case "majority quorum sizes" `Quick test_majority_sizes;
        qcheck prop_gen_configs_legal;
        qcheck prop_weighted_legal;
      ] );
    ( "quorum.description",
      [
        Alcotest.test_case "item validation" `Quick test_item_validation;
        Alcotest.test_case "overlapping dm sets rejected" `Quick
          test_description_overlapping_dms;
      ] );
    ( "quorum.scenario",
      [
        Alcotest.test_case "write-then-read across families" `Slow
          test_write_then_read_families;
        Alcotest.test_case "logical state definitions" `Quick
          test_logical_definitions;
        Alcotest.test_case "no-abort run commits everything" `Quick
          test_no_abort_run_commits_everything;
      ] );
    ( "quorum.checker-sensitivity",
      [
        Alcotest.test_case "corrupted read value caught" `Quick
          test_mutation_read_value_caught;
        Alcotest.test_case "erased DM operations caught" `Quick
          test_mutation_missing_dm_caught;
        Alcotest.test_case "duplicated TM create caught" `Quick
          test_mutation_duplicate_tm_create_caught;
      ] );
    ( "quorum.properties",
      [ qcheck prop_random_systems_correct; qcheck prop_theorem10_projection_clean ]
    );
    ( "quorum.edge-cases",
      [
        Alcotest.test_case "truncated runs pass (prefix closure)" `Quick
          test_truncated_runs_pass;
        Alcotest.test_case "single-DM item" `Quick test_single_dm_item;
        Alcotest.test_case "deep nesting (5 levels)" `Quick test_deep_nesting;
        Alcotest.test_case "logical-state cross-check" `Quick
          test_logical_state_cross_check;
        Alcotest.test_case "full-abort runs still sound" `Quick
          test_stuck_tm_still_sound;
      ] );
    ( "quorum.exhaustive",
      [
        Alcotest.test_case "all abort-free schedules verified" `Quick
          test_exhaustive_no_aborts;
        Alcotest.test_case "all schedules incl. aborts verified" `Quick
          test_exhaustive_with_aborts;
        Alcotest.test_case "budget respected" `Quick
          test_exhaustive_budget_respected;
        Alcotest.test_case "violations surfaced with prefix" `Quick
          test_exhaustive_detects_violations;
      ] );
  ]

(* ---------- coterie theory ---------- *)

module Coterie = Quorum.Coterie

let u5 = [ "a"; "b"; "c"; "d"; "e" ]
let u3 = [ "a"; "b"; "c" ]

let test_coterie_majority_nd () =
  let c =
    Coterie.make ~universe:u3
      ~quorums:[ [ "a"; "b" ]; [ "a"; "c" ]; [ "b"; "c" ] ]
  in
  Alcotest.(check bool) "majority-3 is ND" true (Coterie.non_dominated c);
  Alcotest.(check bool) "no witness" true (Coterie.domination_witness c = None)

let test_coterie_all_dominated () =
  (* the {U} coterie (write-all used for mutual exclusion) is
     dominated: any single site is a transversal containing no
     quorum *)
  let c = Coterie.make ~universe:u3 ~quorums:[ u3 ] in
  Alcotest.(check bool) "write-all dominated" false (Coterie.non_dominated c);
  match Coterie.domination_witness c with
  | Some w -> Alcotest.(check bool) "small witness" true (List.length w < 3)
  | None -> Alcotest.fail "expected a witness"

let test_coterie_singleton_nd () =
  let c = Coterie.make ~universe:u3 ~quorums:[ [ "a" ] ] in
  Alcotest.(check bool) "primary-site coterie is ND" true
    (Coterie.non_dominated c)

let test_coterie_dominates () =
  let majority =
    Coterie.make ~universe:u3
      ~quorums:[ [ "a"; "b" ]; [ "a"; "c" ]; [ "b"; "c" ] ]
  in
  let all = Coterie.make ~universe:u3 ~quorums:[ u3 ] in
  Alcotest.(check bool) "majority dominates write-all" true
    (Coterie.dominates majority all);
  Alcotest.(check bool) "not vice versa" false (Coterie.dominates all majority)

let test_coterie_minimize () =
  Alcotest.(check (list int)) "supersets dropped" [ 0b001; 0b110 ]
    (List.sort compare (Coterie.minimize [ 0b001; 0b011; 0b111; 0b110 ]))

let test_coterie_rejects_disjoint () =
  Alcotest.(check bool) "disjoint quorums rejected" true
    (try
       ignore (Coterie.make ~universe:u5 ~quorums:[ [ "a" ]; [ "b" ] ]);
       false
     with Invalid_argument _ -> true)

let test_write_side_coterie () =
  (* majority write quorums pairwise intersect -> a coterie *)
  Alcotest.(check bool) "majority write side is a coterie" true
    (Coterie.of_write_side (Config.majority u3) <> None);
  (* the generalized algorithm allows non-intersecting write quorums *)
  let general =
    Config.make
      ~read_quorums:[ u3 ]
      ~write_quorums:[ [ "a" ]; [ "b" ] ]
  in
  Alcotest.(check bool) "legal configuration" true (Config.legal general);
  Alcotest.(check bool) "write side not a coterie" true
    (Coterie.of_write_side general = None)

let test_config_domination () =
  (* read-all/write-one is weakly dominated by a config with the same
     write side but smaller read quorums *)
  let raow = Config.raow u3 in
  let better =
    Config.make
      ~read_quorums:[ [ "a"; "b" ]; [ "a"; "c" ]; [ "b"; "c" ] ]
      ~write_quorums:
        [ [ "a"; "b" ]; [ "a"; "c" ]; [ "b"; "c" ] ]
  in
  (* majority dominates raow: majority read quorums are inside the
     read-all quorum, and raow's singleton writes... majority writes
     are NOT inside singletons, so majority does NOT dominate raow *)
  Alcotest.(check bool) "majority does not dominate raow" false
    (Coterie.config_dominates better raow);
  (* but adding redundant larger quorums IS dominated by the original *)
  let padded =
    Config.make
      ~read_quorums:[ u3 ]
      ~write_quorums:[ [ "a"; "b" ]; [ "a" ] ]
  in
  let tight =
    Config.make ~read_quorums:[ [ "a" ]; u3 ] ~write_quorums:[ [ "a" ] ]
  in
  Alcotest.(check bool) "tight dominates padded" true
    (Coterie.config_dominates tight padded)

(* random weighted-voting write sides with w > v/2 are coteries *)
let prop_weighted_write_coterie =
  QCheck.Test.make ~count:100
    ~name:"majority-vote write sides form coteries"
    QCheck.(pair (int_range 0 100_000) (int_range 2 5))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let votes = List.init n (fun i -> (Fmt.str "d%d" i, 1 + Prng.int rng 3)) in
      let total = List.fold_left (fun a (_, v) -> a + v) 0 votes in
      let w = (total / 2) + 1 in
      let r = total - w + 1 in
      let c = Config.weighted ~votes ~read_threshold:r ~write_threshold:w in
      Coterie.of_write_side c <> None)

let coterie_suite =
  ( "quorum.coterie",
    [
      Alcotest.test_case "majority-3 is ND" `Quick test_coterie_majority_nd;
      Alcotest.test_case "write-all coterie dominated" `Quick
        test_coterie_all_dominated;
      Alcotest.test_case "singleton coterie ND" `Quick test_coterie_singleton_nd;
      Alcotest.test_case "domination relation" `Quick test_coterie_dominates;
      Alcotest.test_case "minimization" `Quick test_coterie_minimize;
      Alcotest.test_case "disjoint quorums rejected" `Quick
        test_coterie_rejects_disjoint;
      Alcotest.test_case "write sides as coteries" `Quick test_write_side_coterie;
      Alcotest.test_case "configuration domination" `Quick test_config_domination;
      qcheck prop_weighted_write_coterie;
    ] )

let suites = suites @ [ coterie_suite ]
