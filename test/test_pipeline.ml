(* Tests for the replica-side apply pipeline (Sim.Storage + the
   Replica apply queue) and the adaptive batching window:

   - the storage device model: serialized, deterministic, validated
   - ack-after-fsync: an install's reply never precedes durability
   - group commit amortizes fsyncs vs the naive per-install discipline
   - with storage_cost = fsync_cost = 0, default runs stay
     byte-identical to the pre-pipeline golden trace digests
   - nemesis (partitions + shard kill) with the pipeline enabled keeps
     the serializability audit clean
   - the AIMD window controller: unit behaviour, validation, and the
     cluster-level acceptance (matches static coalescing on bursts,
     adds no window latency on uniform low-rate workloads) *)

module Core = Sim.Core
module Net = Sim.Net
module Storage = Sim.Storage
module Window = Rpc.Window

(* ---------- Sim.Storage: the device model ---------- *)

let test_storage_serializes () =
  let sim = Core.create ~seed:1 in
  let st = Storage.create ~sim ~name:"d" ~write_cost:0.5 ~fsync_cost:2.0 () in
  let log = ref [] in
  (* three submissions at t=0 must execute back to back, not overlap *)
  Storage.submit st ~writes:2 (fun () -> log := ("w2", Core.now sim) :: !log);
  Storage.fsync st (fun () -> log := ("f", Core.now sim) :: !log);
  Storage.submit st ~writes:1 (fun () -> log := ("w1", Core.now sim) :: !log);
  Core.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "serialized completions"
    [ ("w2", 1.0); ("f", 3.0); ("w1", 3.5) ]
    (List.rev !log);
  Alcotest.(check int) "writes counted" 3 (Storage.writes st);
  Alcotest.(check int) "fsyncs counted" 1 (Storage.fsyncs st);
  Alcotest.(check (float 1e-9)) "device idle" 3.5 (Storage.busy_until st)

let test_storage_zero_cost_is_immediate () =
  let sim = Core.create ~seed:1 in
  let st = Storage.create ~sim ~name:"d" () in
  let at = ref nan in
  Core.schedule sim ~delay:7.0 (fun () ->
      Storage.submit st ~writes:5 (fun () ->
          Storage.fsync st (fun () -> at := Core.now sim)));
  Core.run sim;
  Alcotest.(check (float 0.0)) "free device completes at submit time" 7.0 !at

let test_storage_validation () =
  let sim = Core.create ~seed:1 in
  Alcotest.check_raises "negative write_cost"
    (Invalid_argument "Sim.Storage.create: write_cost must be finite and >= 0")
    (fun () ->
      ignore (Storage.create ~sim ~name:"d" ~write_cost:(-1.0) ()));
  Alcotest.check_raises "nan fsync_cost"
    (Invalid_argument "Sim.Storage.create: fsync_cost must be finite and >= 0")
    (fun () -> ignore (Storage.create ~sim ~name:"d" ~fsync_cost:nan ()));
  Alcotest.check_raises "negative writes"
    (Invalid_argument "Sim.Storage.submit: writes must be >= 0")
    (fun () ->
      Storage.submit (Storage.create ~sim ~name:"d" ()) ~writes:(-1) ignore)

(* ---------- the replica apply queue ---------- *)

(* drive one replica directly through [serve], capturing replies *)
let replica_world ~group_commit ~fsync_cost =
  let sim = Core.create ~seed:2 in
  let st = Storage.create ~sim ~name:"r0:disk" ~fsync_cost () in
  let r =
    Store.Replica.create ~name:"r0" ~storage:st ~group_commit ()
  in
  let tr = Obs.Trace.create ~capacity:1024 () in
  let replies = ref [] in
  let install ~rid ~vn =
    Store.Replica.serve r ~tr
      ~reply:(fun m -> replies := (m, Core.now sim) :: !replies)
      (Store.Protocol.Install_req { rid; key = "k"; vn; value = vn * 10; ctx = None })
  in
  (sim, st, r, replies, install)

let test_ack_after_fsync () =
  let sim, st, r, replies, install = replica_world ~group_commit:true ~fsync_cost:3.0 in
  install ~rid:1 ~vn:1;
  (* the write (cost 0) applies at t=0; the fsync completes at t=3 —
     in between, queries already see the value but the ack is held *)
  Core.schedule sim ~delay:1.0 (fun () ->
      Alcotest.(check (pair int int)) "applied before the ack" (1, 10)
        (Store.Replica.lookup r "k");
      Alcotest.(check int) "no ack before the fsync" 0 (List.length !replies));
  Core.run sim;
  (* ...but the ack waits for the fsync *)
  (match !replies with
  | [ (Store.Protocol.Install_ack { rid = 1; key = "k" }, t) ] ->
      Alcotest.(check (float 1e-9)) "ack at fsync completion" 3.0 t
  | _ -> Alcotest.fail "expected exactly one install ack");
  Alcotest.(check int) "one fsync" 1 (Storage.fsyncs st)

let test_group_commit_amortizes_replica_level () =
  (* a same-instant burst of 8 installs: naive = 8 fsyncs, group
     commit = far fewer (first drains alone, the rest group) *)
  let burst group_commit =
    let sim, st, _r, replies, install =
      replica_world ~group_commit ~fsync_cost:3.0
    in
    for i = 1 to 8 do
      install ~rid:i ~vn:i
    done;
    Core.run sim;
    Alcotest.(check int) "all 8 acked" 8 (List.length !replies);
    (Storage.fsyncs st, Core.now sim)
  in
  let naive_fsyncs, naive_t = burst false in
  let group_fsyncs, group_t = burst true in
  Alcotest.(check int) "naive: one fsync per install" 8 naive_fsyncs;
  Alcotest.(check int) "group: first alone, the rest as one group" 2
    group_fsyncs;
  Alcotest.(check bool)
    (Fmt.str "group commit finishes earlier (%.1f < %.1f)" group_t naive_t)
    true (group_t < naive_t)

let test_apply_in_version_order () =
  (* installs enqueued out of version order within one group must
     apply in version order: the highest vn wins, not the last
     arrival *)
  let sim, _st, r, replies, install =
    replica_world ~group_commit:true ~fsync_cost:1.0
  in
  (* rid 1 drains alone; 3, 2 (out of order) form the next group *)
  install ~rid:1 ~vn:1;
  install ~rid:3 ~vn:3;
  install ~rid:2 ~vn:2;
  Core.run sim;
  Alcotest.(check int) "all acked" 3 (List.length !replies);
  Alcotest.(check (pair int int)) "highest version wins" (3, 30)
    (Store.Replica.lookup r "k")

(* ---------- byte-identity with a zero-cost pipeline ---------- *)

let test_zero_cost_pipeline_golden () =
  (* the pinned pre-router digests of Test_shard must also hold with
     the pipeline knobs at their defaults spelled out explicitly:
     storage_cost = fsync_cost = 0 attaches no device, so the serve
     path is the historical synchronous one, byte for byte *)
  List.iter
    (fun (seed, md5, len) ->
      let r =
        Store.Cluster.run
          {
            Store.Cluster.default_params with
            n_replicas = 5;
            n_clients = 3;
            workload = { Store.Workload.default_spec with ops_per_client = 15 };
            storage_cost = 0.0;
            fsync_cost = 0.0;
            group_commit = true;
            adaptive_window = None;
            seed;
            trace_capacity = 262144;
          }
      in
      let s = Obs.Export.jsonl r.Store.Cluster.trace in
      Alcotest.(check int) (Fmt.str "seed %d trace length" seed) len
        (String.length s);
      Alcotest.(check string)
        (Fmt.str "seed %d trace digest" seed)
        md5
        (Digest.to_hex (Digest.string s)))
    Test_shard.golden

(* ---------- cluster-level amortization ---------- *)

let io_params ~group_commit ~seed =
  {
    Store.Cluster.default_params with
    n_replicas = 3;
    n_clients = 4;
    workload =
      {
        Store.Workload.default_spec with
        ops_per_client = 60;
        read_fraction = 0.3;
        zipf_s = 1.1;
        burst = 8;
      };
    storage_cost = 0.05;
    fsync_cost = 5.0;
    group_commit;
    seed;
  }

let test_group_commit_amortizes_cluster_level () =
  let naive = Store.Cluster.run (io_params ~group_commit:false ~seed:42) in
  let group = Store.Cluster.run (io_params ~group_commit:true ~seed:42) in
  Alcotest.(check bool) "audit clean (naive)" true
    (naive.Store.Cluster.audit_violations = []);
  Alcotest.(check bool) "audit clean (group)" true
    (group.Store.Cluster.audit_violations = []);
  let fpi (r : Store.Cluster.results) =
    float_of_int r.Store.Cluster.fsyncs /. float_of_int r.Store.Cluster.installs
  in
  Alcotest.(check (float 1e-9)) "naive: one fsync per install" 1.0 (fpi naive);
  Alcotest.(check bool)
    (Fmt.str "group commit amortizes >= 2x (%.3f vs %.3f fsyncs/install)"
       (fpi naive) (fpi group))
    true
    (fpi naive /. fpi group >= 2.0)

(* ---------- nemesis: pipeline + partitions + shard kill ---------- *)

let prop_pipeline_nemesis_audit_clean =
  QCheck.Test.make ~count:6
    ~name:"group commit + partitions + shard kill keep the audit clean"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let r =
        Store.Cluster.run
          {
            Store.Cluster.default_params with
            n_replicas = 3;
            n_clients = 3;
            n_shards = 3;
            targeting = `Quorum;
            policy =
              Rpc.Policy.with_hedge ~base:(Rpc.Policy.with_retries 2) 12.0;
            partitions = Some 150.0;
            shard_kill = Some (0, 500.0);
            storage_cost = 0.05;
            fsync_cost = 2.0;
            group_commit = true;
            workload =
              {
                Store.Workload.default_spec with
                ops_per_client = 40;
                read_fraction = 0.5;
                zipf_s = 1.1;
                burst = 4;
              };
            seed;
          }
      in
      match r.Store.Cluster.audit_violations with
      | [] -> true
      | v :: _ -> QCheck.Test.fail_report v)

(* ---------- the AIMD window controller ---------- *)

let test_window_aimd_unit () =
  let c =
    Window.create
      {
        Window.min_window = 0.0;
        max_window = 4.0;
        initial = 0.0;
        add = 1.0;
        mult = 0.5;
        busy = 2;
      }
  in
  Alcotest.(check (float 0.0)) "starts at initial" 0.0 (Window.window c);
  Window.observe c ~peak:3;
  Window.observe c ~peak:2;
  Alcotest.(check (float 1e-9)) "additive increase" 2.0 (Window.window c);
  Window.observe c ~peak:8;
  Window.observe c ~peak:8;
  Window.observe c ~peak:8;
  Alcotest.(check (float 1e-9)) "capped at max" 4.0 (Window.window c);
  Window.observe c ~peak:1;
  Alcotest.(check (float 1e-9)) "multiplicative decrease" 2.0 (Window.window c);
  Window.observe c ~peak:0;
  Window.observe c ~peak:1;
  Window.observe c ~peak:1;
  Window.observe c ~peak:1;
  Window.observe c ~peak:1;
  Alcotest.(check (float 0.0)) "decays all the way to the floor" 0.0
    (Window.window c);
  Alcotest.(check int) "widenings counted" 5 (Window.widenings c);
  Alcotest.(check int) "shrinkings counted" 6 (Window.shrinkings c)

let test_window_validation () =
  let ok c = Alcotest.(check bool) "valid" true (Result.is_ok (Window.validate c)) in
  let bad c = Alcotest.(check bool) "rejected" true (Result.is_error (Window.validate c)) in
  ok Window.default_config;
  bad { Window.default_config with Window.min_window = -1.0 };
  bad { Window.default_config with Window.max_window = nan };
  bad { Window.default_config with Window.initial = 100.0 };
  bad { Window.default_config with Window.add = 0.0 };
  bad { Window.default_config with Window.mult = 1.0 };
  bad { Window.default_config with Window.busy = 0 };
  Alcotest.check_raises "create rejects invalid configs"
    (Invalid_argument "Rpc.Window.create: busy must be >= 1") (fun () ->
      ignore (Window.create { Window.default_config with Window.busy = 0 }))

(* ---------- adaptive window: cluster-level acceptance ---------- *)

let window_params ~bursty ~seed =
  if bursty then
    {
      Store.Cluster.default_params with
      n_replicas = 3;
      n_clients = 4;
      workload =
        {
          Store.Workload.default_spec with
          ops_per_client = 60;
          read_fraction = 0.7;
          zipf_s = 1.1;
          burst = 8;
        };
      seed;
    }
  else
    {
      Store.Cluster.default_params with
      n_replicas = 3;
      n_clients = 4;
      workload =
        {
          Store.Workload.default_spec with
          ops_per_client = 60;
          read_fraction = 0.9;
          zipf_s = 0.0;
          think_time = 10.0;
          burst = 1;
        };
      seed;
    }

let test_adaptive_window_coalesces_bursts () =
  let p = window_params ~bursty:true ~seed:42 in
  let unbatched = Store.Cluster.run p in
  let adaptive =
    Store.Cluster.run
      { p with Store.Cluster.adaptive_window = Some Window.default_config }
  in
  Alcotest.(check bool) "audit clean" true
    (adaptive.Store.Cluster.audit_violations = []);
  let su = unbatched.Store.Cluster.net.Net.sent
  and sa = adaptive.Store.Cluster.net.Net.sent in
  (* static window 1.0 cuts this workload's messages ~5x; the
     controller must land in the same regime, not halfway *)
  Alcotest.(check bool)
    (Fmt.str "adaptive coalesces bursts (%d -> %d wire messages)" su sa)
    true
    (float_of_int sa <= 0.3 *. float_of_int su)

let test_adaptive_window_free_on_uniform () =
  (* on a uniform low-rate workload the controller sits at window 0,
     and a 0-delay flush runs at the same virtual instant as the send:
     results are identical to unbatched, latency included *)
  let p = window_params ~bursty:false ~seed:42 in
  let unbatched = Store.Cluster.run p in
  let adaptive =
    Store.Cluster.run
      { p with Store.Cluster.adaptive_window = Some Window.default_config }
  in
  let mean (r : Store.Cluster.results) =
    Store.Experiments.mean_op_latency r
  in
  Alcotest.(check int) "same wire messages"
    unbatched.Store.Cluster.net.Net.sent adaptive.Store.Cluster.net.Net.sent;
  Alcotest.(check (float 1e-9)) "same mean op latency" (mean unbatched)
    (mean adaptive);
  Alcotest.(check int) "same ok ops"
    Store.Cluster.(unbatched.ok_reads + unbatched.ok_writes)
    Store.Cluster.(adaptive.ok_reads + adaptive.ok_writes)

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "sim.storage",
      [
        Alcotest.test_case "device serializes and counts" `Quick
          test_storage_serializes;
        Alcotest.test_case "zero-cost device is immediate" `Quick
          test_storage_zero_cost_is_immediate;
        Alcotest.test_case "creation validation" `Quick test_storage_validation;
      ] );
    ( "store.pipeline",
      [
        Alcotest.test_case "install acks only after fsync" `Quick
          test_ack_after_fsync;
        Alcotest.test_case "group commit amortizes a replica burst" `Quick
          test_group_commit_amortizes_replica_level;
        Alcotest.test_case "groups apply in version order" `Quick
          test_apply_in_version_order;
        Alcotest.test_case "zero-cost pipeline matches golden traces" `Slow
          test_zero_cost_pipeline_golden;
        Alcotest.test_case "group commit amortizes >= 2x cluster-wide" `Slow
          test_group_commit_amortizes_cluster_level;
        qcheck prop_pipeline_nemesis_audit_clean;
      ] );
    ( "rpc.window",
      [
        Alcotest.test_case "aimd unit behaviour" `Quick test_window_aimd_unit;
        Alcotest.test_case "config validation" `Quick test_window_validation;
        Alcotest.test_case "adaptive window coalesces bursts" `Slow
          test_adaptive_window_coalesces_bursts;
        Alcotest.test_case "adaptive window is free on uniform load" `Slow
          test_adaptive_window_free_on_uniform;
      ] );
  ]
