(* Tests for the shard router and multi-key batching (lib/store):
   deterministic key → shard maps, batch frames end to end, the
   message economy batching buys under skew, audit cleanliness when
   sharding + batching + partitions compose, and a byte-for-byte trace
   regression pinning default configurations to the pre-router
   behaviour. *)

module Core = Sim.Core
module Net = Sim.Net
module Router = Store.Router
module P = Store.Protocol

(* ---------- routing determinism ---------- *)

let some_keys =
  List.init 200 Store.Workload.key_name
  @ [ "alpha"; "k"; "counter-7"; ""; "the same key" ]

let test_shard_fn_deterministic () =
  List.iter
    (fun scheme ->
      let f = Router.shard_fn scheme ~n_shards:4 ~n_keys:100 in
      let g = Router.shard_fn scheme ~n_shards:4 ~n_keys:100 in
      List.iter
        (fun key ->
          let s = f key in
          Alcotest.(check int)
            (Fmt.str "same map for %S (%s)" key (Router.scheme_label scheme))
            s (g key);
          Alcotest.(check bool) "in range" true (s >= 0 && s < 4))
        some_keys)
    [ `Hash; `Range ];
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Router.shard_fn: n_shards must be >= 1") (fun () ->
      ignore (Router.shard_fn `Hash ~n_shards:0 ~n_keys:10 : string -> int))

let test_range_contiguous () =
  let n_keys = 20 and n_shards = 4 in
  let f = Router.shard_fn `Range ~n_shards ~n_keys in
  let shards = List.init n_keys (fun i -> f (Store.Workload.key_name i)) in
  (* monotone over the key index, covering every shard: contiguous
     equal-width ranges *)
  ignore
    (List.fold_left
       (fun prev s ->
         Alcotest.(check bool) "monotone over key index" true (s >= prev);
         s)
       0 shards);
  List.iteri
    (fun s _ ->
      Alcotest.(check bool)
        (Fmt.str "shard %d owns some range" s)
        true
        (List.mem s shards))
    (List.init n_shards Fun.id);
  (* a key outside the numeric space still routes somewhere stable *)
  let s = f "alpha" in
  Alcotest.(check int) "non-numeric fallback is stable" s (f "alpha")

let test_hash_spreads () =
  let f = Router.shard_fn `Hash ~n_shards:4 ~n_keys:400 in
  let counts = Array.make 4 0 in
  List.iter
    (fun i ->
      let s = f (Store.Workload.key_name i) in
      counts.(s) <- counts.(s) + 1)
    (List.init 400 Fun.id);
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Fmt.str "shard %d gets a fair share (%d)" s c)
        true (c > 40))
    counts

let test_key_index () =
  let check name exp got =
    Alcotest.(check (option int)) name exp got
  in
  check "k12" (Some 12) (Router.key_index "k12");
  check "r3" (Some 3) (Router.key_index "r3");
  check "k" None (Router.key_index "k");
  check "alpha" None (Router.key_index "alpha");
  check "" None (Router.key_index "")

(* ---------- batch frames ---------- *)

let test_replica_batch_round_trip () =
  let r = Store.Replica.create ~name:"r0" () in
  let tr = Obs.Trace.create ~capacity:64 () in
  let reply =
    Store.Replica.handle_one r ~tr
      (P.Batch_req
         {
           rid = 9;
           reqs =
             [
               P.Install_req { rid = 1; key = "a"; vn = 1; value = 10; ctx = None };
               P.Query_req { rid = 2; key = "a"; ctx = None };
               P.Query_req { rid = 3; key = "missing"; ctx = None };
             ];
         })
  in
  match reply with
  | Some (P.Batch_rep { rid = 9; reps }) ->
      (match reps with
      | [
       P.Install_ack { rid = 1; key = "a" };
       P.Query_rep { rid = 2; key = "a"; vn = 1; value = 10 };
       P.Query_rep { rid = 3; key = "missing"; vn = 0; value = 0 };
      ] ->
          ()
      | _ -> Alcotest.fail "replies must answer each request in order");
      Alcotest.(check int) "both requests counted" 3 (Store.Replica.load r)
  | _ -> Alcotest.fail "a batch request must earn one batch reply"

let test_engine_coalesces_burst () =
  (* two same-tick reads of different keys: with a batch window each
     replica receives ONE wire message carrying two queries *)
  let replica_names = List.init 5 (fun i -> Fmt.str "r%d" i) in
  let run ~batch_window =
    let sim = Core.create ~seed:11 in
    let net = Net.create ~sim ~nodes:("c" :: replica_names) () in
    let replicas =
      List.map (fun name -> Store.Replica.create ~name ()) replica_names
    in
    List.iter (fun r -> Store.Replica.attach r ~net) replicas;
    let client =
      Store.Client.create ~name:"c" ~sim ~net
        ~replicas:(Array.of_list replica_names)
        ~strategy:(Store.Strategy.majority 5) ?batch_window ()
    in
    Store.Client.attach client;
    let ok = ref 0 in
    let on_done ~ok:o ~vn:_ ~value:_ ~latency:_ = if o then incr ok in
    Store.Client.read client ~key:"x" ~on_done;
    Store.Client.read client ~key:"y" ~on_done;
    Core.run sim;
    (!ok, Net.counters net)
  in
  let ok_u, c_u = run ~batch_window:None in
  let ok_b, c_b = run ~batch_window:(Some 1.0) in
  Alcotest.(check int) "unbatched reads succeed" 2 ok_u;
  Alcotest.(check int) "batched reads succeed" 2 ok_b;
  Alcotest.(check int) "unbatched: one wire message per query" c_u.Net.sent
    c_u.Net.payload_sent;
  Alcotest.(check bool)
    (Fmt.str "batched: fewer wire messages than payloads (%d < %d)"
       c_b.Net.sent c_b.Net.payload_sent)
    true
    (c_b.Net.sent < c_b.Net.payload_sent);
  Alcotest.(check int) "same logical payloads either way" c_u.Net.payload_sent
    c_b.Net.payload_sent

(* ---------- message economy under skew ---------- *)

let skewed_params ~batch_window ~seed =
  {
    Store.Cluster.default_params with
    n_replicas = 3;
    n_clients = 4;
    n_shards = 4;
    shard_scheme = `Range;
    batch_window;
    workload =
      {
        Store.Workload.default_spec with
        ops_per_client = 60;
        read_fraction = 0.7;
        zipf_s = 1.1;
        burst = 8;
      };
    seed;
  }

let test_batching_cuts_messages () =
  let u = Store.Cluster.run (skewed_params ~batch_window:None ~seed:13) in
  let b = Store.Cluster.run (skewed_params ~batch_window:(Some 1.0) ~seed:13) in
  let ops r = Store.Cluster.(r.ok_reads + r.ok_writes) in
  Alcotest.(check int) "same completed ops" (ops u) (ops b);
  Alcotest.(check bool) "audit clean (unbatched)" true
    (u.Store.Cluster.audit_violations = []);
  Alcotest.(check bool) "audit clean (batched)" true
    (b.Store.Cluster.audit_violations = []);
  let su = u.Store.Cluster.net.Net.sent
  and sb = b.Store.Cluster.net.Net.sent in
  Alcotest.(check bool)
    (Fmt.str "batching cuts wire messages by >= 30%% (%d -> %d)" su sb)
    true
    (float_of_int sb <= 0.7 *. float_of_int su)

(* ---------- composition: shards + batching + nemesis ---------- *)

let prop_sharded_batched_partitions_audit_clean =
  QCheck.Test.make ~count:6
    ~name:"shards + batching + partitions keep the audit clean"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let r =
        Store.Cluster.run
          {
            Store.Cluster.default_params with
            n_replicas = 3;
            n_clients = 3;
            n_shards = 3;
            batch_window = Some 1.0;
            targeting = `Quorum;
            policy =
              Rpc.Policy.with_hedge ~base:(Rpc.Policy.with_retries 2) 12.0;
            (* the partition storm as a harness script — compiles onto
               the identical legacy code path (same PRNG, same digest) *)
            script = Harness.Script.of_partitions 150.0;
            workload =
              {
                Store.Workload.default_spec with
                ops_per_client = 40;
                read_fraction = 0.5;
                zipf_s = 1.1;
                burst = 4;
              };
            seed;
          }
      in
      match r.Store.Cluster.audit_violations with
      | [] -> true
      | v :: _ -> QCheck.Test.fail_report v)

(* ---------- byte-identical default runs ---------- *)

(* Digests of the full JSONL trace export of three seeded default
   (1-shard, unbatched, fire-once) runs, captured before the router
   refactor landed.  Any drift in message order, rid allocation, PRNG
   draws or trace emission changes these strings. *)
let golden = [ (42, "62fd09f876b38be191cb8eefb006d365", 323316);
               (7, "eac657f6d728608b593eb6216e997d00", 289142);
               (101, "47b0ed42009c6a189e527695b71c9d8d", 283337) ]

let test_default_trace_golden () =
  List.iter
    (fun (seed, md5, len) ->
      let r =
        Store.Cluster.run
          {
            Store.Cluster.default_params with
            n_replicas = 5;
            n_clients = 3;
            workload =
              { Store.Workload.default_spec with ops_per_client = 15 };
            seed;
            trace_capacity = 262144;
          }
      in
      let s = Obs.Export.jsonl r.Store.Cluster.trace in
      Alcotest.(check int) (Fmt.str "seed %d trace length" seed) len
        (String.length s);
      Alcotest.(check string)
        (Fmt.str "seed %d trace digest" seed)
        md5
        (Digest.to_hex (Digest.string s)))
    golden

(* ---------- route_many: the txn layer's footprint split ---------- *)

(* [route_many] must agree with [shard_of] key by key, keep shards in
   first-appearance order, each shard's keys in input order, and
   preserve duplicates — under both schemes *)
let test_route_many_groups () =
  List.iter
    (fun scheme ->
      let sim = Core.create ~seed:1 in
      let groups =
        Array.init 3 (fun s ->
            Array.init 3 (fun i -> Fmt.str "s%d:r%d" s i))
      in
      let nodes =
        (Array.to_list groups |> List.concat_map Array.to_list) @ [ "c0" ]
      in
      let net =
        Net.create ~sim ~nodes ~latency:(Net.uniform_latency ~lo:1.0 ~hi:1.0) ()
      in
      let r =
        Router.create ~name:"c0" ~sim ~net ~groups
          ~strategies:(Array.make 3 (Store.Strategy.majority 3))
          ~scheme ~n_keys:30 ()
      in
      let keys =
        List.init 12 Store.Workload.key_name @ [ "k3"; "alpha"; "k3" ]
      in
      let split = Router.route_many r keys in
      (* every key lands with its own shard, order and duplicates kept *)
      let flattened =
        List.concat_map (fun (s, ks) -> List.map (fun k -> (s, k)) ks) split
      in
      List.iter
        (fun (s, k) ->
          Alcotest.(check int)
            (Fmt.str "%s agrees with shard_of (%s)" k
               (Router.scheme_label scheme))
            (Router.shard_of r k) s)
        flattened;
      Alcotest.(check (list string))
        "all keys kept, per-shard input order"
        (List.sort String.compare keys)
        (List.sort String.compare (List.map snd flattened));
      (* shards appear once each, in first-appearance order *)
      let shard_order = List.map fst split in
      Alcotest.(check (list int))
        "shards listed once, in first-appearance order"
        (List.fold_left
           (fun acc k ->
             let s = Router.shard_of r k in
             if List.mem s acc then acc else acc @ [ s ])
           [] keys)
        shard_order;
      (* within a shard, keys keep input order *)
      List.iter
        (fun (s, ks) ->
          let expected =
            List.filter (fun k -> Router.shard_of r k = s) keys
          in
          Alcotest.(check (list string))
            (Fmt.str "shard %d keys in input order" s)
            expected ks)
        split;
      (* under [`Range], a contiguous key run splits into contiguous
         per-shard runs *)
      if scheme = `Range then
        List.iter
          (fun (_, ks) ->
            let idx = List.filter_map Router.key_index ks in
            ignore
              (List.fold_left
                 (fun prev i ->
                   Alcotest.(check bool) "contiguous run" true (i >= prev);
                   i)
                 (-1) idx))
          (Router.route_many r (List.init 12 Store.Workload.key_name)))
    [ `Hash; `Range ]

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "store.shard",
      [
        Alcotest.test_case "shard_fn is deterministic" `Quick
          test_shard_fn_deterministic;
        Alcotest.test_case "range scheme is contiguous" `Quick
          test_range_contiguous;
        Alcotest.test_case "hash scheme spreads keys" `Quick test_hash_spreads;
        Alcotest.test_case "key_index parses numeric suffixes" `Quick
          test_key_index;
        Alcotest.test_case "route_many groups by shard" `Quick
          test_route_many_groups;
        Alcotest.test_case "default runs match pre-router traces" `Slow
          test_default_trace_golden;
      ] );
    ( "store.batch",
      [
        Alcotest.test_case "replica batch frame round-trip" `Quick
          test_replica_batch_round_trip;
        Alcotest.test_case "engine coalesces a same-tick burst" `Quick
          test_engine_coalesces_burst;
        Alcotest.test_case "batching cuts messages under skew" `Slow
          test_batching_cuts_messages;
        qcheck prop_sharded_batched_partitions_audit_clean;
      ] );
  ]
