(* Tests for the discrete-event simulator: heap, clock, network,
   failures, statistics. *)

module Prng = Qc_util.Prng

(* ---------- heap ---------- *)

let test_heap_ordering () =
  let h = Sim.Heap.create () in
  List.iteri (fun i t -> Sim.Heap.push h t i t) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let rec drain acc =
    match Sim.Heap.pop h with
    | Some (t, _, _) -> drain (t :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list (float 0.0)))
    "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (drain [])

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  Sim.Heap.push h 1.0 1 "first";
  Sim.Heap.push h 1.0 2 "second";
  (match Sim.Heap.pop h with
  | Some (_, _, v) -> Alcotest.(check string) "fifo" "first" v
  | None -> Alcotest.fail "pop");
  match Sim.Heap.pop h with
  | Some (_, _, v) -> Alcotest.(check string) "fifo 2" "second" v
  | None -> Alcotest.fail "pop"

let prop_heap_sorted =
  QCheck.Test.make ~count:100 ~name:"heap drains in key order"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun times ->
      let h = Sim.Heap.create () in
      List.iteri (fun i t -> Sim.Heap.push h t i ()) times;
      let rec drain prev =
        match Sim.Heap.pop h with
        | None -> true
        | Some (t, _, ()) -> t >= prev && drain t
      in
      drain neg_infinity)

(* ---------- clock ---------- *)

let test_sim_time_advances () =
  let sim = Sim.Core.create ~seed:1 in
  let order = ref [] in
  Sim.Core.schedule sim ~delay:5.0 (fun () -> order := "b" :: !order);
  Sim.Core.schedule sim ~delay:1.0 (fun () ->
      order := "a" :: !order;
      Sim.Core.schedule sim ~delay:1.0 (fun () -> order := "c" :: !order));
  Sim.Core.run sim;
  Alcotest.(check (list string)) "event order" [ "a"; "c"; "b" ] (List.rev !order);
  Alcotest.(check (float 0.001)) "final time" 5.0 (Sim.Core.now sim)

let test_sim_until () =
  let sim = Sim.Core.create ~seed:1 in
  let fired = ref false in
  Sim.Core.schedule sim ~delay:10.0 (fun () -> fired := true);
  Sim.Core.run ~until:5.0 sim;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check (float 0.001)) "clock at bound" 5.0 (Sim.Core.now sim)

(* ---------- network ---------- *)

let mk_net ?(loss = 0.0) () =
  let sim = Sim.Core.create ~seed:3 in
  let net =
    Sim.Net.create ~sim ~nodes:[ "a"; "b" ]
      ~latency:(Sim.Net.uniform_latency ~lo:1.0 ~hi:2.0)
      ~loss ()
  in
  (sim, net)

let test_net_delivery () =
  let sim, net = mk_net () in
  let got = ref [] in
  Sim.Net.register net ~node:"b" (fun ~src msg -> got := (src, msg) :: !got);
  Sim.Net.send net ~src:"a" ~dst:"b" 42;
  Sim.Core.run sim;
  Alcotest.(check (list (pair string int))) "delivered" [ ("a", 42) ] !got

let test_net_crash_drops () =
  let sim, net = mk_net () in
  let got = ref 0 in
  Sim.Net.register net ~node:"b" (fun ~src:_ _ -> incr got);
  Sim.Net.crash net "b";
  Sim.Net.send net ~src:"a" ~dst:"b" 1;
  Sim.Core.run sim;
  Alcotest.(check int) "dropped at dead dst" 0 !got;
  Sim.Net.recover net "b";
  Sim.Net.send net ~src:"a" ~dst:"b" 2;
  Sim.Core.run sim;
  Alcotest.(check int) "delivered after recovery" 1 !got

let test_net_dead_sender () =
  let sim, net = mk_net () in
  let got = ref 0 in
  Sim.Net.register net ~node:"b" (fun ~src:_ _ -> incr got);
  Sim.Net.crash net "a";
  Sim.Net.send net ~src:"a" ~dst:"b" 1;
  Sim.Core.run sim;
  Alcotest.(check int) "dead sender drops" 0 !got

let test_net_link_cut () =
  let sim, net = mk_net () in
  let got = ref 0 in
  Sim.Net.register net ~node:"b" (fun ~src:_ _ -> incr got);
  Sim.Net.cut_link net "a" "b";
  Sim.Net.send net ~src:"a" ~dst:"b" 1;
  Sim.Core.run sim;
  Alcotest.(check int) "cut link drops" 0 !got;
  Sim.Net.heal_link net "a" "b";
  Sim.Net.send net ~src:"a" ~dst:"b" 2;
  Sim.Core.run sim;
  Alcotest.(check int) "healed link delivers" 1 !got

let test_net_loss_rate () =
  let sim, net = mk_net ~loss:0.5 () in
  let got = ref 0 in
  Sim.Net.register net ~node:"b" (fun ~src:_ _ -> incr got);
  for _ = 1 to 2000 do
    Sim.Net.send net ~src:"a" ~dst:"b" 0
  done;
  Sim.Core.run sim;
  let rate = float_of_int !got /. 2000.0 in
  Alcotest.(check bool)
    (Fmt.str "delivery rate %.3f close to 0.5" rate)
    true
    (abs_float (rate -. 0.5) < 0.05)

let test_sim_determinism () =
  let run () =
    let sim, net = mk_net ~loss:0.3 () in
    let got = ref 0 in
    Sim.Net.register net ~node:"b" (fun ~src:_ _ -> incr got);
    for _ = 1 to 100 do
      Sim.Net.send net ~src:"a" ~dst:"b" 0
    done;
    Sim.Core.run sim;
    (!got, Sim.Core.now sim)
  in
  Alcotest.(check bool) "same seed, same outcome" true (run () = run ())

(* ---------- failures ---------- *)

let test_failure_availability () =
  (* a node under mtbf=90 mttr=10 should be up ~90% of the time *)
  let sim = Sim.Core.create ~seed:5 in
  let net =
    Sim.Net.create ~sim ~nodes:[ "n" ]
      ~latency:(Sim.Net.uniform_latency ~lo:0.1 ~hi:0.2)
      ()
  in
  let spec = { Sim.Failure.mtbf = 90.0; mttr = 10.0 } in
  Alcotest.(check (float 0.001)) "analytic availability" 0.9
    (Sim.Failure.availability spec);
  let inj = Sim.Failure.attach ~sim ~net ~node:"n" ~spec ~until:100_000.0 () in
  let up_samples = ref 0 and samples = 1000 in
  let rec sample i =
    if i < samples then
      Sim.Core.schedule sim ~delay:100.0 (fun () ->
          if Sim.Net.is_up net "n" then incr up_samples;
          sample (i + 1))
  in
  sample 0;
  Sim.Core.run ~until:100_001.0 sim;
  let frac = float_of_int !up_samples /. float_of_int samples in
  Alcotest.(check bool)
    (Fmt.str "measured availability %.3f close to 0.9" frac)
    true
    (abs_float (frac -. 0.9) < 0.05);
  (* the injector handle's own accounting must agree *)
  let inj_frac = Sim.Failure.up_fraction inj ~now:(Sim.Core.now sim) in
  Alcotest.(check bool)
    (Fmt.str "injector up-fraction %.3f close to 0.9" inj_frac)
    true
    (abs_float (inj_frac -. 0.9) < 0.05)

(* ---------- stats ---------- *)

let test_stats_percentiles () =
  let s = Sim.Stats.create () in
  for i = 1 to 100 do
    Sim.Stats.add s (float_of_int i)
  done;
  let sum = Sim.Stats.summarize s in
  Alcotest.(check int) "count" 100 sum.Sim.Stats.count;
  Alcotest.(check (float 0.001)) "mean" 50.5 sum.Sim.Stats.mean;
  Alcotest.(check (float 0.001)) "p50" 50.0 sum.Sim.Stats.p50;
  Alcotest.(check (float 0.001)) "p90" 90.0 sum.Sim.Stats.p90;
  Alcotest.(check (float 0.001)) "p99" 99.0 sum.Sim.Stats.p99;
  Alcotest.(check (float 0.001)) "max" 100.0 sum.Sim.Stats.max

let test_stats_empty () =
  let sum = Sim.Stats.summarize (Sim.Stats.create ()) in
  Alcotest.(check int) "count 0" 0 sum.Sim.Stats.count

(* Pinned nearest-rank values: rank = ceil(p * n), 1-based.  These pin
   the percentile definition so it cannot silently drift. *)
let test_stats_nearest_rank () =
  let pct xs p = Sim.Stats.percentile (Sim.Stats.of_list xs) p in
  let check name expected got =
    Alcotest.(check (float 0.0)) name expected got
  in
  (* n = 1: every percentile is the only sample *)
  check "n=1 p50" 7.0 (pct [ 7.0 ] 0.50);
  check "n=1 p999" 7.0 (pct [ 7.0 ] 0.999);
  (* n = 2: p50 -> rank ceil(1.0) = 1; p90 -> rank ceil(1.8) = 2 *)
  check "n=2 p50" 1.0 (pct [ 2.0; 1.0 ] 0.50);
  check "n=2 p90" 2.0 (pct [ 2.0; 1.0 ] 0.90);
  (* n = 10 over 1..10 *)
  let ten = List.init 10 (fun i -> float_of_int (i + 1)) in
  check "n=10 p50" 5.0 (pct ten 0.50);
  check "n=10 p90" 9.0 (pct ten 0.90);
  check "n=10 p95" 10.0 (pct ten 0.95);
  check "n=10 p999" 10.0 (pct ten 0.999);
  (* n = 100 over 1..100 *)
  let hundred = List.init 100 (fun i -> float_of_int (i + 1)) in
  check "n=100 p50" 50.0 (pct hundred 0.50);
  check "n=100 p95" 95.0 (pct hundred 0.95);
  check "n=100 p99" 99.0 (pct hundred 0.99);
  check "n=100 p999" 100.0 (pct hundred 0.999);
  (* out-of-range p clamps to the extremes *)
  check "p=0 is min" 1.0 (pct hundred 0.0);
  check "p=1 is max" 100.0 (pct hundred 1.0)

let test_stats_p95_p999_summary () =
  let s = Sim.Stats.create () in
  for i = 1 to 1000 do
    Sim.Stats.add s (float_of_int i)
  done;
  let sum = Sim.Stats.summarize s in
  Alcotest.(check (float 0.0)) "p95" 950.0 sum.Sim.Stats.p95;
  Alcotest.(check (float 0.0)) "p999" 999.0 sum.Sim.Stats.p999

let test_stats_merge () =
  let a = Sim.Stats.of_list [ 1.0; 3.0; 5.0 ] in
  let b = Sim.Stats.of_list [ 2.0; 4.0 ] in
  let m = Sim.Stats.summarize (Sim.Stats.merge a b) in
  Alcotest.(check int) "merged count" 5 m.Sim.Stats.count;
  Alcotest.(check (float 1e-9)) "merged mean" 3.0 m.Sim.Stats.mean;
  Alcotest.(check (float 0.0)) "merged p50" 3.0 m.Sim.Stats.p50;
  Alcotest.(check (float 0.0)) "merged max" 5.0 m.Sim.Stats.max;
  (* inputs are untouched *)
  Alcotest.(check int) "a unchanged" 3
    (Sim.Stats.summarize a).Sim.Stats.count;
  Alcotest.(check int) "b unchanged" 2
    (Sim.Stats.summarize b).Sim.Stats.count

let test_stats_merge_weighted_mean () =
  (* the merged mean is the count-weighted mean of the parts, not the
     mean of the two means — unequal sample counts expose the
     difference *)
  let a = Sim.Stats.of_list [ 10.0 ] in
  let b = Sim.Stats.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0 ] in
  let m = Sim.Stats.summarize (Sim.Stats.merge a b) in
  let sa = Sim.Stats.summarize a and sb = Sim.Stats.summarize b in
  let weighted =
    ((sa.Sim.Stats.mean *. float_of_int sa.Sim.Stats.count)
    +. (sb.Sim.Stats.mean *. float_of_int sb.Sim.Stats.count))
    /. float_of_int (sa.Sim.Stats.count + sb.Sim.Stats.count)
  in
  Alcotest.(check (float 1e-9)) "count-weighted mean" weighted m.Sim.Stats.mean;
  Alcotest.(check bool) "differs from mean-of-means" true
    (Float.abs (m.Sim.Stats.mean -. ((sa.Sim.Stats.mean +. sb.Sim.Stats.mean) /. 2.0))
    > 0.1)

let prop_stats_merge_order_independent =
  QCheck.Test.make ~count:100 ~name:"Stats.merge is order-independent"
    QCheck.(
      pair
        (list (float_bound_exclusive 1000.0))
        (list (float_bound_exclusive 1000.0)))
    (fun (xs, ys) ->
      let s1 =
        Sim.Stats.summarize
          (Sim.Stats.merge (Sim.Stats.of_list xs) (Sim.Stats.of_list ys))
      in
      let s2 =
        Sim.Stats.summarize
          (Sim.Stats.merge (Sim.Stats.of_list ys) (Sim.Stats.of_list xs))
      in
      s1.Sim.Stats.count = s2.Sim.Stats.count
      && (s1.Sim.Stats.count = 0
         || Float.abs (s1.Sim.Stats.mean -. s2.Sim.Stats.mean) <= 1e-9
            && s1.Sim.Stats.p50 = s2.Sim.Stats.p50
            && s1.Sim.Stats.p95 = s2.Sim.Stats.p95
            && s1.Sim.Stats.p999 = s2.Sim.Stats.p999
            && s1.Sim.Stats.max = s2.Sim.Stats.max))

(* ---------- drop-reason accounting ---------- *)

let test_drop_reasons () =
  let sim, net = mk_net () in
  Sim.Net.register net ~node:"b" (fun ~src:_ _ -> ());
  (* sender down *)
  Sim.Net.crash net "a";
  Sim.Net.send net ~src:"a" ~dst:"b" 0;
  Sim.Net.recover net "a";
  (* link cut *)
  Sim.Net.cut_link net "a" "b";
  Sim.Net.send net ~src:"a" ~dst:"b" 0;
  Sim.Net.heal_link net "a" "b";
  (* dest down at delivery time *)
  Sim.Net.crash net "b";
  Sim.Net.send net ~src:"a" ~dst:"b" 0;
  Sim.Core.run sim;
  let c = Sim.Net.counters net in
  Alcotest.(check int) "sent" 3 c.Sim.Net.sent;
  Alcotest.(check int) "delivered" 0 c.Sim.Net.delivered;
  Alcotest.(check int) "sender_down" 1 c.Sim.Net.drop_sender_down;
  Alcotest.(check int) "link_cut" 1 c.Sim.Net.drop_link_cut;
  Alcotest.(check int) "dest_down" 1 c.Sim.Net.drop_dest_down;
  Alcotest.(check int) "loss" 0 c.Sim.Net.drop_loss;
  Alcotest.(check int) "total is the sum" c.Sim.Net.dropped
    (c.Sim.Net.drop_sender_down + c.Sim.Net.drop_dest_down
   + c.Sim.Net.drop_link_cut + c.Sim.Net.drop_loss)

let test_drop_loss_counted () =
  let sim, net = mk_net ~loss:1.0 () in
  Sim.Net.register net ~node:"b" (fun ~src:_ _ -> ());
  Sim.Net.send net ~src:"a" ~dst:"b" 0;
  Sim.Core.run sim;
  let c = Sim.Net.counters net in
  Alcotest.(check int) "loss drop" 1 c.Sim.Net.drop_loss;
  Alcotest.(check int) "total" 1 c.Sim.Net.dropped

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "sim.heap",
      [
        Alcotest.test_case "orders by time" `Quick test_heap_ordering;
        Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_ties;
        qcheck prop_heap_sorted;
      ] );
    ( "sim.core",
      [
        Alcotest.test_case "time advances with events" `Quick test_sim_time_advances;
        Alcotest.test_case "run until bound" `Quick test_sim_until;
      ] );
    ( "sim.net",
      [
        Alcotest.test_case "delivery" `Quick test_net_delivery;
        Alcotest.test_case "crash drops, recover delivers" `Quick
          test_net_crash_drops;
        Alcotest.test_case "dead sender drops" `Quick test_net_dead_sender;
        Alcotest.test_case "link cut and heal" `Quick test_net_link_cut;
        Alcotest.test_case "loss rate" `Quick test_net_loss_rate;
        Alcotest.test_case "determinism" `Quick test_sim_determinism;
        Alcotest.test_case "drop reasons attributed" `Quick test_drop_reasons;
        Alcotest.test_case "loss drops counted" `Quick test_drop_loss_counted;
      ] );
    ( "sim.failure",
      [ Alcotest.test_case "availability matches spec" `Quick test_failure_availability ]
    );
    ( "sim.stats",
      [
        Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
        Alcotest.test_case "empty summary" `Quick test_stats_empty;
        Alcotest.test_case "nearest-rank pinned values" `Quick
          test_stats_nearest_rank;
        Alcotest.test_case "p95/p999 in summary" `Quick
          test_stats_p95_p999_summary;
        Alcotest.test_case "merge" `Quick test_stats_merge;
        Alcotest.test_case "merge mean is count-weighted" `Quick
          test_stats_merge_weighted_mean;
        qcheck prop_stats_merge_order_independent;
      ] );
  ]
