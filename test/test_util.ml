(* Tests for the deterministic PRNG. *)

module Prng = Qc_util.Prng

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_int_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_range_inclusive () =
  let rng = Prng.create 8 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let x = Prng.range rng 3 7 in
    Alcotest.(check bool) "in [3,7]" true (x >= 3 && x <= 7);
    seen.(x - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_unit () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_shuffle_permutation () =
  let rng = Prng.create 10 in
  let xs = List.init 50 Fun.id in
  let ys = Prng.shuffle rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_choose_member () =
  let rng = Prng.create 11 in
  for _ = 1 to 100 do
    let x = Prng.choose rng [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem x [ 1; 2; 3 ])
  done

let test_choose_empty () =
  Alcotest.(check (option int)) "empty" None
    (Prng.choose_opt (Prng.create 1) [])

let test_exponential_mean () =
  let rng = Prng.create 12 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Prng.exponential rng ~mean:5.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Fmt.str "mean %.3f close to 5.0" mean)
    true
    (abs_float (mean -. 5.0) < 0.2)

let test_subset_probability () =
  let rng = Prng.create 13 in
  let xs = List.init 100 Fun.id in
  let total = ref 0 in
  for _ = 1 to 200 do
    total := !total + List.length (Prng.subset rng xs ~p:0.3)
  done;
  let mean = float_of_int !total /. 200.0 in
  Alcotest.(check bool)
    (Fmt.str "mean subset size %.1f close to 30" mean)
    true
    (abs_float (mean -. 30.0) < 3.0)

let test_split_independent () =
  let parent = Prng.create 99 in
  let c1 = Prng.split parent in
  let c2 = Prng.split parent in
  let xs = List.init 10 (fun _ -> Prng.int c1 1_000_000) in
  let ys = List.init 10 (fun _ -> Prng.int c2 1_000_000) in
  Alcotest.(check bool) "children differ" true (xs <> ys)

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "different seeds" `Quick test_different_seeds;
        Alcotest.test_case "int range" `Quick test_int_range;
        Alcotest.test_case "range inclusive" `Quick test_range_inclusive;
        Alcotest.test_case "float unit interval" `Quick test_float_unit;
        Alcotest.test_case "shuffle is a permutation" `Quick
          test_shuffle_permutation;
        Alcotest.test_case "choose picks members" `Quick test_choose_member;
        Alcotest.test_case "choose_opt empty" `Quick test_choose_empty;
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "subset probability" `Quick test_subset_probability;
        Alcotest.test_case "split independence" `Quick test_split_independent;
      ] );
  ]
