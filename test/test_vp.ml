(* Tests for the virtual-partition extension (E14): views, the
   view-change protocol, partition behavior, and consistency across
   view changes. *)

module Core = Sim.Core
module Net = Sim.Net

(* ---------- views ---------- *)

let test_primary_rule () =
  let v m = { Vp.View.id = 1; members = m } in
  Alcotest.(check bool) "3 of 5 primary" true
    (Vp.View.primary ~n_total:5 (v [ "a"; "b"; "c" ]));
  Alcotest.(check bool) "2 of 5 not primary" false
    (Vp.View.primary ~n_total:5 (v [ "a"; "b" ]));
  Alcotest.(check bool) "2 of 4 not primary (ties lose)" false
    (Vp.View.primary ~n_total:4 (v [ "a"; "b" ]))

(* ---------- small harness ---------- *)

let replica_names = List.init 5 (fun i -> Fmt.str "r%d" i)

let with_cluster ~seed f =
  let sim = Core.create ~seed in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ [ "c0"; "mgr" ])
      ~latency:(Net.lognormal_latency ~mu:0.5 ~sigma:0.3)
      ()
  in
  let view0 = Vp.View.initial ~replicas:replica_names in
  let replicas =
    List.map
      (fun name -> Vp.Replica.create ~name ~initial_view:view0)
      replica_names
  in
  List.iter (fun r -> Vp.Replica.attach r ~net) replicas;
  let mgr =
    Vp.Manager.create ~name:"mgr" ~sim ~net ~all_replicas:replica_names ()
  in
  let client = Vp.Client.create ~name:"c0" ~sim ~net ~view:view0 ~seed () in
  Vp.Client.attach client;
  f sim net mgr client

let test_read_write_in_initial_view () =
  with_cluster ~seed:1 (fun sim _net _mgr client ->
      let got = ref (-1) in
      Vp.Client.write client ~key:"k" ~value:42
        ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ ->
          Alcotest.(check bool) "write ok" true ok;
          Vp.Client.read client ~key:"k"
            ~on_done:(fun ~ok ~vn:_ ~value ~latency:_ ->
              Alcotest.(check bool) "read ok" true ok;
              got := value));
      Core.run sim;
      Alcotest.(check int) "read sees write" 42 !got)

let test_minority_view_refused () =
  with_cluster ~seed:2 (fun sim _net mgr _client ->
      let refused = ref false in
      Vp.Manager.change_view mgr ~members:[ "r0"; "r1" ]
        ~on_done:(fun ~ok _ -> refused := not ok);
      Core.run sim;
      Alcotest.(check bool) "minority refused" true !refused)

let test_view_change_carries_state () =
  with_cluster ~seed:3 (fun sim net mgr client ->
      let final = ref (-1) in
      Vp.Client.write client ~key:"k" ~value:7
        ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ ->
          Alcotest.(check bool) "write ok" true ok;
          (* cut r3, r4 off and change view to the majority side *)
          List.iter
            (fun a ->
              List.iter (fun b -> Net.cut_link net a b) [ "r3"; "r4" ])
            [ "r0"; "r1"; "r2"; "c0"; "mgr" ];
          Vp.Manager.change_view mgr ~members:[ "r0"; "r1"; "r2" ]
            ~on_done:(fun ~ok view ->
              Alcotest.(check bool) "view change ok" true ok;
              Vp.Client.set_view client view;
              Vp.Client.read client ~key:"k"
                ~on_done:(fun ~ok ~vn:_ ~value ~latency:_ ->
                  Alcotest.(check bool) "read ok in new view" true ok;
                  final := value)));
      Core.run sim;
      Alcotest.(check int) "state carried into new view" 7 !final)

let test_stale_view_nacked () =
  with_cluster ~seed:4 (fun sim _net mgr client ->
      (* change the view but do NOT tell the client *)
      let read_failed = ref false in
      Vp.Manager.change_view mgr ~members:replica_names ~on_done:(fun ~ok _ ->
          Alcotest.(check bool) "view change ok" true ok;
          Vp.Client.read client ~key:"k"
            ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ ->
              read_failed := not ok));
      Core.run sim;
      Alcotest.(check bool) "stale-view read fails" true !read_failed)

(* ---------- the experiment shapes ---------- *)

let test_experiment_shape () =
  let c = Vp.Experiments.compare () in
  Alcotest.(check int) "no stale reads" 0 c.Vp.Experiments.stale_reads;
  Alcotest.(check bool) "minority view refused" true c.minority_view_refused;
  let rate name =
    match
      List.find_opt (fun (r : Vp.Experiments.phase_row) -> r.phase = name)
        c.phases
    with
    | Some r -> float_of_int r.ok /. float_of_int (max 1 (r.ok + r.failed))
    | None -> nan
  in
  Alcotest.(check bool) "healthy near-perfect" true (rate "A-healthy" > 0.98);
  Alcotest.(check bool) "partition hurts before the view change" true
    (rate "B-partitioned" < 0.9);
  Alcotest.(check bool) "primary view restores availability" true
    (rate "C-primary-view" > 0.85);
  Alcotest.(check bool) "healed view near-perfect" true (rate "D-healed" > 0.95);
  (* the read-one fast path: VP healthy reads at least as fast as
     static majority reads *)
  Alcotest.(check bool) "read-one at least as fast as majority" true
    (c.vp_read_mean <= c.majority_read_mean +. 0.5)

let test_experiment_multi_seed () =
  List.iter
    (fun seed ->
      let c = Vp.Experiments.compare ~seed () in
      Alcotest.(check int)
        (Fmt.str "seed %d: no stale reads" seed)
        0 c.Vp.Experiments.stale_reads)
    [ 41; 42; 43; 44; 45 ]

(* Regression for the determinism lint: [Replica.state] is a canonical
   snapshot — hash-bucket order must never leak, so any insertion
   order yields the same key-sorted list. *)
let test_state_insertion_order () =
  let view = Vp.View.initial ~replicas:[ "r0" ] in
  let bindings = List.init 40 (fun i -> (Fmt.str "k%02d" i, (i, 3 * i))) in
  let build order =
    let r = Vp.Replica.create ~name:"r0" ~initial_view:view in
    List.iter (fun (k, v) -> Hashtbl.replace r.Vp.Replica.data k v) order;
    Vp.Replica.state r
  in
  let rng = Qc_util.Prng.create 7 in
  let reference = build bindings in
  Alcotest.(check bool) "snapshot key-sorted" true
    (List.map fst reference = List.sort String.compare (List.map fst reference));
  for trial = 1 to 5 do
    let shuffled = build (Qc_util.Prng.shuffle rng bindings) in
    Alcotest.(check bool)
      (Fmt.str "shuffled insertion %d: same snapshot" trial)
      true (shuffled = reference)
  done

let suites =
  [
    ("vp.view", [ Alcotest.test_case "primary rule" `Quick test_primary_rule ]);
    ( "vp.protocol",
      [
        Alcotest.test_case "read/write in initial view" `Quick
          test_read_write_in_initial_view;
        Alcotest.test_case "minority view refused" `Quick
          test_minority_view_refused;
        Alcotest.test_case "view change carries state" `Quick
          test_view_change_carries_state;
        Alcotest.test_case "stale view NACKed" `Quick test_stale_view_nacked;
        Alcotest.test_case "state snapshot insertion-order free" `Quick
          test_state_insertion_order;
      ] );
    ( "vp.experiment",
      [
        Alcotest.test_case "partition timeline shape (E14)" `Slow
          test_experiment_shape;
        Alcotest.test_case "no stale reads across seeds" `Slow
          test_experiment_multi_seed;
      ] );
  ]
