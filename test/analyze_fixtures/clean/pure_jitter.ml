(* The clean counterpart of ../bad/hidden_random.ml: jitter derived
   from a pure integer mix of a caller-supplied seed — deterministic,
   no ambient effect anywhere in the chain. *)

let mix z =
  let z = Int64.of_int z in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL
  in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 29)) land max_int

let jitter ~seed base = base + (mix seed mod 10)
let backoff_ms ~seed attempt = jitter ~seed (attempt * 10)
