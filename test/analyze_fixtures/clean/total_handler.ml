(* The clean counterpart of ../bad/wildcard_handler.ml: every
   constructor spelled on both sides of the wire. *)

type msg = Ping of int | Pong of int | Gossip of string [@@lint.protocol]

let[@lint.protocol_handler] handle m =
  match m with
  | Ping n -> Some (Pong n)
  | Pong _ -> None
  | Gossip _ -> None

let[@lint.protocol_serialize] to_wire m =
  match m with
  | Ping n -> "ping:" ^ string_of_int n
  | Pong n -> "pong:" ^ string_of_int n
  | Gossip s -> "gossip:" ^ s

let[@lint.protocol_deserialize] of_wire s =
  match String.split_on_char ':' s with
  | [ "ping"; n ] -> Some (Ping (int_of_string n))
  | [ "pong"; n ] -> Some (Pong (int_of_string n))
  | [ "gossip"; s ] -> Some (Gossip s)
  | _ -> None
