(* The clean counterpart of ../bad/unsorted_locks.ml: the acquisition
   footprint is canonically sorted and deduplicated first, so the
   global acquisition order is one total order — no hold-and-wait
   cycle can form. *)

let lock_table : (string, string) Hashtbl.t = Hashtbl.create 16

let acquire_all txid keys =
  let footprint = List.sort_uniq String.compare keys in
  List.iter (fun k -> Hashtbl.replace lock_table k txid) footprint

let release_all keys = List.iter (fun k -> Hashtbl.remove lock_table k) keys
