(* Planted taint: Random.int reaches the public surface through two
   pure-looking helpers — the [effect-taint] pass must report the
   whole chain, not just the direct call site. *)

let roll () = Random.int 6
let jitter base = base + roll ()
let backoff_ms attempt = jitter (attempt * 10)
