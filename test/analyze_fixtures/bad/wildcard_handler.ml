(* Planted totality bugs: the handler hides frames behind a wildcard
   arm, and the deserializer cannot produce [Gossip] — both must be
   flagged by the [handler-totality] pass. *)

type msg = Ping of int | Pong of int | Gossip of string [@@lint.protocol]

let[@lint.protocol_handler] handle m =
  match m with
  | Ping n -> Some (Pong n)
  | _ -> None

let[@lint.protocol_serialize] to_wire m =
  match m with
  | Ping n -> "ping:" ^ string_of_int n
  | Pong n -> "pong:" ^ string_of_int n
  | Gossip s -> "gossip:" ^ s

let[@lint.protocol_deserialize] of_wire s =
  match String.split_on_char ':' s with
  | [ "ping"; n ] -> Some (Ping (int_of_string n))
  | [ "pong"; n ] -> Some (Pong (int_of_string n))
  | _ -> None
