(* Planted lock-order bug: the acquisition loop walks the caller's key
   order, so two overlapping footprints can hold-and-wait in a cycle —
   must be flagged by the [lock-order] pass. *)

let lock_table : (string, string) Hashtbl.t = Hashtbl.create 16

let acquire_all txid keys =
  List.iter (fun k -> Hashtbl.replace lock_table k txid) keys

let release_all keys = List.iter (fun k -> Hashtbl.remove lock_table k) keys
