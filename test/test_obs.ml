(* Tests for the observability layer: trace core, exporters, metrics,
   query API, and the wiring through sim / net / store / ioa. *)

module Trace = Obs.Trace
module Export = Obs.Export
module Json = Obs.Json
module Metrics = Obs.Metrics
module Query = Obs.Query

(* ---------- trace core ---------- *)

let test_ring_bounds () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 7 do
    Trace.instant tr ~cat:"t" ~name:"e" ~ts:(float_of_int i) ()
  done;
  Alcotest.(check int) "bounded" 4 (Trace.length tr);
  Alcotest.(check int) "overwritten" 3 (Trace.overwritten tr);
  let seqs = List.map (fun (e : Trace.event) -> e.Trace.seq) (Trace.events tr) in
  Alcotest.(check (list int)) "newest kept, in order" [ 3; 4; 5; 6 ] seqs

let test_disabled_tracer_free () =
  let tr = Trace.create ~capacity:16 ~enabled:false () in
  Trace.instant tr ~cat:"t" ~name:"e" ();
  let s = Trace.begin_span tr ~cat:"t" ~name:"s" () in
  Trace.end_span tr s ();
  Alcotest.(check int) "nothing recorded" 0 (Trace.length tr);
  (* a zero-capacity tracer cannot even be enabled *)
  let z = Trace.create ~capacity:0 () in
  Trace.set_enabled z true;
  Trace.instant z ~cat:"t" ~name:"e" ();
  Alcotest.(check int) "capacity 0 stays off" 0 (Trace.length z)

let test_span_pairing () =
  let tr = Trace.create () in
  let a = Trace.begin_span tr ~cat:"c" ~name:"outer" ~ts:1.0 () in
  let b = Trace.begin_span tr ~cat:"c" ~name:"inner" ~ts:2.0 () in
  Trace.end_span tr b ~ts:3.0 ();
  Trace.end_span tr a ~ts:5.0 ();
  Trace.instant tr ~cat:"c" ~name:"mark" ~ts:2.5 ();
  let spans = Query.spans (Trace.events tr) in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let outer = List.find (fun (s : Query.span) -> s.Query.name = "outer") spans in
  let inner = List.find (fun (s : Query.span) -> s.Query.name = "inner") spans in
  Alcotest.(check (float 1e-9)) "outer duration" 4.0 (Query.duration outer);
  Alcotest.(check (float 1e-9)) "inner duration" 1.0 (Query.duration inner);
  Alcotest.(check bool) "balanced" true
    (Result.is_ok (Query.check_balanced (Trace.events tr)))

let test_unbalanced_detected () =
  let tr = Trace.create () in
  let _open_span = Trace.begin_span tr ~cat:"c" ~name:"s" () in
  Alcotest.(check bool) "unfinished span flagged" true
    (Result.is_error (Query.check_balanced (Trace.events tr)))

(* ---------- json ---------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("a", Json.Num 1.5);
        ("b", Json.Str "x\"y\n");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Num 42.0 ]);
        ("d", Json.Obj []);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.fail e
  | Ok j' ->
      Alcotest.(check bool) "roundtrip" true (j = j');
      Alcotest.(check (option string)) "member" (Some "x\"y\n")
        (Option.bind (Json.member "b" j') Json.to_string_opt)

let test_json_control_chars () =
  (* control characters must be escaped — raw bytes below 0x20 in the
     output would corrupt JSONL (literal newline splits the line) *)
  let j = Json.Str "a\nb\tc\x01d\re\x1ff" in
  let s = Json.to_string j in
  String.iter
    (fun ch ->
      Alcotest.(check bool) "no raw control byte" true (Char.code ch >= 0x20))
    s;
  Alcotest.(check string) "escaped form" "\"a\\nb\\tc\\u0001d\\re\\u001ff\"" s;
  (match Json.parse s with
  | Error e -> Alcotest.fail e
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j'));
  (* and through the trace exporter: a pathological arg stays one line *)
  let tr = Trace.create ~capacity:8 () in
  Trace.instant tr ~cat:"t" ~name:"e" ~ts:1.0
    ~args:[ ("msg", Trace.Str "evil\nvalue\x01") ]
    ();
  let line = String.trim (Export.jsonl tr) in
  Alcotest.(check bool) "one JSONL line" true
    (not (String.contains line '\n'));
  match Export.parse_jsonl line with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
      Alcotest.(check (option string)) "arg survives" (Some "evil\nvalue\x01")
        (Query.arg_str e.Trace.args "msg")
  | Ok _ -> Alcotest.fail "expected exactly one event"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Fmt.str "rejects %S" s)
        true
        (Result.is_error (Json.parse s)))
    [ "{"; "[1,"; "{\"a\":}"; "tru"; "{\"a\":1}x"; "\"unterminated" ]

(* ---------- export: wraparound, strict import ---------- *)

let test_ring_wraparound_export () =
  (* overflow a tiny ring so the oldest B events are evicted while
     their E events survive: the Chrome export must drop the orphan
     E events (stay loadable), and the query layer must not fabricate
     spans from them *)
  let tr = Trace.create ~capacity:6 () in
  let spans =
    List.init 8 (fun i ->
        Trace.begin_span tr ~cat:"t" ~name:(Fmt.str "s%d" i)
          ~ts:(float_of_int i) ())
  in
  List.iteri
    (fun i s -> Trace.end_span tr s ~ts:(float_of_int (10 + i)) ())
    spans;
  Alcotest.(check bool) "ring actually wrapped" true (Trace.overwritten tr > 0);
  let events = Trace.events tr in
  let orphan_es =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.ph = Trace.E
        && not
             (List.exists
                (fun (b : Trace.event) ->
                  b.Trace.ph = Trace.B && b.Trace.id = e.Trace.id)
                events))
      events
  in
  Alcotest.(check bool) "orphan E events present" true (orphan_es <> []);
  (match Export.check_chrome (Export.chrome_of_events events) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("chrome export broken by wraparound: " ^ e));
  let stitched = Query.spans events in
  List.iter
    (fun (o : Trace.event) ->
      Alcotest.(check bool) "orphan E not stitched" true
        (not (List.exists (fun (s : Query.span) -> s.Query.id = o.Trace.id)
                stitched)))
    orphan_es

let test_parse_jsonl_strict () =
  let tr = Trace.create ~capacity:16 () in
  let s = Trace.begin_span tr ~cat:"c" ~name:"op" ~ts:1.0
      ~args:[ ("op", Trace.Str "c0#1"); ("n", Trace.Int 3) ] () in
  Trace.instant tr ~cat:"c" ~name:"mark" ~ts:1.5 ();
  Trace.end_span tr s ~ts:2.0 ();
  let good = Export.jsonl tr in
  (match Export.parse_jsonl good with
  | Error e -> Alcotest.fail e
  | Ok evs ->
      Alcotest.(check int) "all events" 3 (List.length evs);
      (* parse-then-re-export is byte-stable *)
      Alcotest.(check string) "round-trip bytes" good
        (Export.jsonl_of_events evs));
  (* a corrupt line fails with its line number — never a partial trace *)
  let lines = String.split_on_char '\n' (String.trim good) in
  let corrupt =
    String.concat "\n"
      (List.mapi (fun i l -> if i = 1 then "{\"ts\": oops}" else l) lines)
  in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match Export.parse_jsonl corrupt with
  | Ok _ -> Alcotest.fail "accepted corrupt input"
  | Error e ->
      Alcotest.(check bool)
        (Fmt.str "error %S names line 2" e)
        true (contains_sub e "line 2")

(* ---------- metrics ---------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("replica", "r0") ] "ops" in
  Metrics.inc c;
  Metrics.inc ~by:3 c;
  Alcotest.(check int) "counter" 4 (Metrics.value c);
  (* same (name, labels) -> same instrument, any label order *)
  let c' = Metrics.counter m ~labels:[ ("replica", "r0") ] "ops" in
  Metrics.inc c';
  Alcotest.(check int) "shared" 5 (Metrics.value c);
  let other = Metrics.counter m ~labels:[ ("replica", "r1") ] "ops" in
  Alcotest.(check int) "distinct labels distinct" 0 (Metrics.value other);
  let g = Metrics.gauge m "depth" in
  Metrics.set g 7.5;
  Alcotest.(check (float 0.0)) "gauge" 7.5 (Metrics.gauge_value g)

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.0; 2.0; 5.0 |] "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.9; 5.0; 100.0 ];
  let got = Metrics.bucket_counts h in
  Alcotest.(check (list int)) "bucket counts" [ 2; 2; 2; 1 ]
    (List.map snd got);
  Alcotest.(check (list string)) "bucket bounds"
    [ "1."; "2."; "5."; "inf" ]
    (List.map (fun (b, _) -> string_of_float b) got);
  Alcotest.(check int) "count" 7 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 114.9 (Metrics.hist_sum h);
  (* conservative bucket quantiles: upper bound of the covering bucket *)
  Alcotest.(check (float 0.0)) "q50" 2.0 (Metrics.quantile h 0.5);
  Alcotest.(check bool) "q99 lands in the +inf bucket" true
    (Metrics.quantile h 0.99 = infinity);
  Alcotest.(check (float 0.0)) "q25" 1.0 (Metrics.quantile h 0.25)

(* ---------- cluster wiring: determinism, balance, layers ---------- *)

let traced_params seed =
  {
    Store.Cluster.default_params with
    n_replicas = 5;
    n_clients = 3;
    workload = { Store.Workload.default_spec with ops_per_client = 15 };
    seed;
    trace_capacity = 262144;
  }

let test_trace_deterministic () =
  let dump () =
    Export.jsonl (Store.Cluster.run (traced_params 42)).Store.Cluster.trace
  in
  let a = dump () and b = dump () in
  Alcotest.(check bool) "non-trivial" true (String.length a > 1000);
  Alcotest.(check bool) "byte-identical JSONL" true (String.equal a b)

let test_chrome_wellformed () =
  let r = Store.Cluster.run (traced_params 43) in
  let chrome = Export.chrome r.Store.Cluster.trace in
  (match Export.check_chrome chrome with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* sim, net and store all emit *)
  let events = Trace.events r.Store.Cluster.trace in
  List.iter
    (fun cat ->
      Alcotest.(check bool)
        (Fmt.str "%s layer emits" cat)
        true
        (Query.filter_events ~cat events <> []))
    [ "sim"; "net"; "store" ]

let test_spans_match_stats () =
  (* the trace query API agrees with the cluster's own Sim.Stats: the
     number of successful read spans equals the read count, and their
     mean duration the read-latency mean *)
  let r = Store.Cluster.run (traced_params 44) in
  let events = Trace.events r.Store.Cluster.trace in
  let ok_spans name =
    List.filter
      (fun (s : Query.span) -> Query.arg_bool s.Query.args "ok" = Some true)
      (Query.filter ~cat:"store" ~name (Query.spans events))
  in
  let reads = ok_spans "read" in
  Alcotest.(check int) "ok read spans = ok_reads" r.Store.Cluster.ok_reads
    (List.length reads);
  let summary = Sim.Stats.summarize (Sim.Stats.of_list (Query.durations reads)) in
  Alcotest.(check (float 1e-6))
    "span means = stats means" r.Store.Cluster.reads.Sim.Stats.mean
    summary.Sim.Stats.mean;
  Alcotest.(check (float 1e-6))
    "span p99 = stats p99" r.Store.Cluster.reads.Sim.Stats.p99
    summary.Sim.Stats.p99

let test_read_spans_contain_quorum_replies () =
  (* every successful read span contains >= a read quorum (3 of 5
     under majority) of reply instants for its request id *)
  let r = Store.Cluster.run (traced_params 45) in
  let events = Trace.events r.Store.Cluster.trace in
  let reads =
    List.filter
      (fun (s : Query.span) -> Query.arg_bool s.Query.args "ok" = Some true)
      (Query.filter ~cat:"store" ~name:"read" (Query.spans events))
  in
  Alcotest.(check bool) "some successful reads" true (reads <> []);
  List.iter
    (fun (s : Query.span) ->
      let rid = Option.get (Query.arg_int s.Query.args "rid") in
      let replies =
        List.filter
          (fun (e : Trace.event) ->
            Query.arg_int e.Trace.args "rid" = Some rid)
          (Query.filter_events ~cat:"store" ~name:"reply"
             (Query.events_within s events))
      in
      if List.length replies < 3 then
        Alcotest.failf "read span rid=%d saw only %d replies" rid
          (List.length replies))
    reads

let test_nemesis_drops_attributed () =
  (* with a partition nemesis and no loss, drops are link_cut /
     sender_down / dest_down, never loss — and the partition instants
     are in the trace *)
  let r =
    Store.Cluster.run
      { (traced_params 46) with partitions = Some 40.0; loss = 0.0 }
  in
  let c = r.Store.Cluster.net in
  Alcotest.(check int) "no loss drops" 0 c.Sim.Net.drop_loss;
  Alcotest.(check bool) "some link-cut drops" true (c.Sim.Net.drop_link_cut > 0);
  Alcotest.(check int) "total = sum of reasons" c.Sim.Net.dropped
    (c.Sim.Net.drop_sender_down + c.Sim.Net.drop_dest_down
   + c.Sim.Net.drop_link_cut + c.Sim.Net.drop_loss);
  let events = Trace.events r.Store.Cluster.trace in
  Alcotest.(check bool) "partition instants traced" true
    (Query.filter_events ~cat:"store" ~name:"nemesis.partition" events <> [])

let test_cluster_metrics_registry () =
  let r = Store.Cluster.run (traced_params 47) in
  let m = r.Store.Cluster.metrics in
  let total_ok =
    List.fold_left
      (fun acc ci ->
        acc
        + Metrics.value
            (Metrics.counter m
               ~labels:[ ("client", Fmt.str "c%d" ci) ]
               "store.client.ops_ok"))
      0 [ 0; 1; 2 ]
  in
  Alcotest.(check int) "registry ops_ok = results ok count"
    (r.Store.Cluster.ok_reads + r.Store.Cluster.ok_writes)
    total_ok

(* ---------- ioa wiring ---------- *)

let test_ioa_action_trail () =
  let tracer = Trace.create ~capacity:65536 () in
  match Quorum.Harness.run_and_check ~max_steps:500 ~tracer ~seed:11 () with
  | Error e -> Alcotest.fail e
  | Ok report ->
      let steps =
        Query.filter_events ~cat:"ioa" ~name:"step" (Trace.events tracer)
      in
      Alcotest.(check int) "one instant per scheduler step"
        report.Quorum.Harness.steps (List.length steps);
      (* the trail carries the rendered actions, in order *)
      List.iteri
        (fun i (e : Trace.event) ->
          Alcotest.(check (option int)) "step index" (Some i)
            (Query.arg_int e.Trace.args "i");
          if Query.arg_str e.Trace.args "action" = None then
            Alcotest.fail "step without action arg")
        steps

(* ---------- qcheck: query durations agree with Sim.Stats ---------- *)

let prop_span_durations_match_stats =
  QCheck.Test.make ~count:100
    ~name:"trace query span durations agree with Sim.Stats"
    QCheck.(small_list (pair (float_bound_exclusive 1000.0) (float_bound_exclusive 50.0)))
    (fun ops ->
      let tr = Trace.create () in
      List.iter
        (fun (start, dur) ->
          let s = Trace.begin_span tr ~cat:"t" ~name:"op" ~ts:start () in
          Trace.end_span tr s ~ts:(start +. dur) ())
        ops;
      let durations =
        Query.durations (Query.spans (Trace.events tr))
      in
      let expected = List.map snd ops in
      let s1 = Sim.Stats.summarize (Sim.Stats.of_list durations) in
      let s2 = Sim.Stats.summarize (Sim.Stats.of_list expected) in
      (* span endpoints round-trip through [start +. dur -. start], so
         compare with an ulp-scale tolerance *)
      let close a b = Float.abs (a -. b) < 1e-6 in
      s1.Sim.Stats.count = s2.Sim.Stats.count
      && (s1.Sim.Stats.count = 0
         || close s1.Sim.Stats.mean s2.Sim.Stats.mean
            && close s1.Sim.Stats.p50 s2.Sim.Stats.p50
            && close s1.Sim.Stats.p999 s2.Sim.Stats.p999
            && close s1.Sim.Stats.max s2.Sim.Stats.max))

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "ring buffer bounds" `Quick test_ring_bounds;
        Alcotest.test_case "disabled tracer records nothing" `Quick
          test_disabled_tracer_free;
        Alcotest.test_case "span pairing and durations" `Quick test_span_pairing;
        Alcotest.test_case "unbalanced spans detected" `Quick
          test_unbalanced_detected;
      ] );
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "control characters escaped" `Quick
          test_json_control_chars;
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "wraparound keeps chrome well-formed" `Quick
          test_ring_wraparound_export;
        Alcotest.test_case "strict jsonl import" `Quick test_parse_jsonl_strict;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick test_metrics_counters;
        Alcotest.test_case "histogram bucket math" `Quick test_histogram_buckets;
      ] );
    ( "obs.cluster",
      [
        Alcotest.test_case "same seed, byte-identical JSONL" `Quick
          test_trace_deterministic;
        Alcotest.test_case "chrome export well-formed" `Quick
          test_chrome_wellformed;
        Alcotest.test_case "span durations = Sim.Stats" `Quick
          test_spans_match_stats;
        Alcotest.test_case "read spans contain quorum replies" `Quick
          test_read_spans_contain_quorum_replies;
        Alcotest.test_case "nemesis drops attributed" `Quick
          test_nemesis_drops_attributed;
        Alcotest.test_case "metrics registry totals" `Quick
          test_cluster_metrics_registry;
      ] );
    ( "obs.ioa",
      [ Alcotest.test_case "action trail" `Quick test_ioa_action_trail ] );
    ("obs.props", [ qcheck prop_span_durations_match_stats ]);
  ]
