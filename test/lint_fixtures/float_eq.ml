(* Fixture: float-compare rule.  Violations at lines 6, 7 and 8; the
   binding at line 5 and the ordering test at line 12 are not
   comparisons of that class, and the pragma'd site at line 11 is
   silent. *)
let threshold = 0.5
let bad_eq x = x = 1.0
let bad_cmp x y = compare (x +. 1.0) y
let bad_sort (xs : float list) = List.sort compare xs

(* lint: float-eq-ok *)
let excused x = x <> 0.25
let ordering_is_fine x = x < threshold +. 1.0
