(* Fixture: effect-ban rule.  Violations at lines 4, 5 and 6; the
   pragma'd site at line 9 is silent. *)

let bad_random () = Random.int 10
let bad_unix () = Unix.gettimeofday ()
let bad_time () = Sys.time ()

(* lint: effect-ok *)
let excused () = Random.bits ()
