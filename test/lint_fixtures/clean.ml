(* Fixture: a clean file — the lint reports nothing. *)

let ints = List.sort Int.compare [ 3; 1; 2 ]
let floats = List.sort Float.compare [ 3.0; 1.0; 2.0 ]
let close = Float.equal 1.0 1.0
let mention_in_string = "Hashtbl.fold and Random.int are only words here"
