(* Fixture: pragma hygiene.  The unknown pragma at line 4 and the
   pragma at line 7 that silences nothing are themselves findings. *)

(* lint: no-such-rule *)
let f x = x + 1

(* lint: order-insensitive *)
let g x = x
