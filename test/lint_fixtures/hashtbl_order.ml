(* Fixture: hashtbl-order rule.  Violations at lines 5 and 6; the
   fold under the line-8 pragma and the fold with the same-line
   pragma at line 10 are silent. *)

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
let dump t = Hashtbl.iter (fun _ v -> print_int v) t

(* lint: order-insensitive *)
let count t = Hashtbl.fold (fun _ _ n -> n + 1) t 0
let size t = Hashtbl.fold (fun _ _ n -> n + 1) t 0 (* lint: order-insensitive *)
