(* Tests for the General Quorum Consensus ADT extension (E13):
   timestamps, sequential specs, log merging, the replicated client,
   and the headline comparisons. *)

module Prng = Qc_util.Prng
module Core = Sim.Core
module Net = Sim.Net

(* ---------- timestamps ---------- *)

let test_timestamp_order () =
  let a = { Adt.Timestamp.time = 1; client = "a"; seq = 1 } in
  let b = { Adt.Timestamp.time = 2; client = "a"; seq = 2 } in
  let c = { Adt.Timestamp.time = 1; client = "b"; seq = 1 } in
  Alcotest.(check bool) "time dominates" true (Adt.Timestamp.compare a b < 0);
  Alcotest.(check bool) "client breaks ties" true (Adt.Timestamp.compare a c < 0);
  Alcotest.(check bool) "reflexive equal" true (Adt.Timestamp.equal a a)

let test_clock_monotone () =
  let c = Adt.Timestamp.clock ~id:"x" in
  let t1 = Adt.Timestamp.fresh c in
  Adt.Timestamp.observe c { Adt.Timestamp.time = 50; client = "y"; seq = 3 };
  let t2 = Adt.Timestamp.fresh c in
  Alcotest.(check bool) "fresh after observe dominates" true
    (Adt.Timestamp.compare t1 t2 < 0 && t2.Adt.Timestamp.time > 50)

(* ---------- sequential spec ---------- *)

let test_spec_counter () =
  let st = Adt.Spec.replay [ Adt.Spec.Inc 3; Adt.Spec.Inc 4 ] in
  Alcotest.(check bool) "total 7" true (snd (Adt.Spec.apply st Adt.Spec.Total) = Adt.Spec.Value 7)

let test_spec_register () =
  let st = Adt.Spec.replay [ Adt.Spec.Set 1; Adt.Spec.Set 9 ] in
  Alcotest.(check bool) "last writer wins" true
    (snd (Adt.Spec.apply st Adt.Spec.Get) = Adt.Spec.Value 9);
  Alcotest.(check bool) "unset register empty" true
    (snd (Adt.Spec.apply Adt.Spec.initial Adt.Spec.Get) = Adt.Spec.Empty)

let test_spec_queue () =
  let st = Adt.Spec.replay [ Adt.Spec.Enq 1; Adt.Spec.Enq 2; Adt.Spec.Deq ] in
  Alcotest.(check bool) "fifo order" true
    (snd (Adt.Spec.apply st Adt.Spec.Deq) = Adt.Spec.Value 2);
  Alcotest.(check bool) "empty deq" true
    (snd (Adt.Spec.apply Adt.Spec.initial Adt.Spec.Deq) = Adt.Spec.Empty)

let test_spec_roles () =
  Alcotest.(check bool) "inc mutates, does not observe" true
    (Adt.Spec.mutates (Adt.Spec.Inc 1) && not (Adt.Spec.observes (Adt.Spec.Inc 1)));
  Alcotest.(check bool) "total observes, does not mutate" true
    (Adt.Spec.observes Adt.Spec.Total && not (Adt.Spec.mutates Adt.Spec.Total));
  Alcotest.(check bool) "deq observes and mutates" true
    (Adt.Spec.observes Adt.Spec.Deq && Adt.Spec.mutates Adt.Spec.Deq)

(* ---------- log merge ---------- *)

let entry time client seq op =
  { Adt.Replica.ts = { Adt.Timestamp.time; client; seq }; op }

let test_merge_union_sorted () =
  let a = [ entry 1 "a" 1 (Adt.Spec.Inc 1); entry 3 "a" 2 (Adt.Spec.Inc 1) ] in
  let b = [ entry 2 "b" 1 (Adt.Spec.Inc 1); entry 3 "a" 2 (Adt.Spec.Inc 1) ] in
  let m = Adt.Replica.merge a b in
  Alcotest.(check int) "union without duplicates" 3 (List.length m);
  let times = List.map (fun (e : Adt.Replica.entry) -> e.Adt.Replica.ts.Adt.Timestamp.time) m in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] times

let test_merge_idempotent () =
  let a = [ entry 1 "a" 1 (Adt.Spec.Inc 1); entry 2 "a" 2 (Adt.Spec.Inc 1) ] in
  Alcotest.(check int) "self-merge is identity" 2
    (List.length (Adt.Replica.merge a a))

(* ---------- end-to-end replicated ADT ---------- *)

let with_cluster ~seed f =
  let sim = Core.create ~seed in
  let replica_names = List.init 5 (fun i -> Fmt.str "r%d" i) in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ [ "c0" ])
      ~latency:(Net.lognormal_latency ~mu:0.5 ~sigma:0.3)
      ()
  in
  let replicas = List.map (fun name -> Adt.Replica.create ~name) replica_names in
  List.iter (fun r -> Adt.Replica.attach r ~net) replicas;
  let client =
    Adt.Client.create ~name:"c0" ~sim ~net
      ~replicas:(Array.of_list replica_names)
      ~strategy:(Store.Strategy.majority 5)
      ()
  in
  Adt.Client.attach client;
  f sim client

let test_counter_end_to_end () =
  with_cluster ~seed:4 (fun sim client ->
      let results = ref [] in
      let rec seq ops =
        match ops with
        | [] -> ()
        | op :: rest ->
            Adt.Client.execute client ~key:"k" ~op
              ~on_done:(fun ~ok ~result ~latency:_ ->
                Alcotest.(check bool) "op succeeds" true ok;
                results := result :: !results;
                seq rest)
      in
      seq [ Adt.Spec.Inc 5; Adt.Spec.Inc 7; Adt.Spec.Total ];
      Core.run sim;
      match !results with
      | [ Adt.Spec.Value 12; Adt.Spec.Unit; Adt.Spec.Unit ] -> ()
      | _ -> Alcotest.fail "expected total 12")

let test_queue_end_to_end () =
  with_cluster ~seed:5 (fun sim client ->
      let deqs = ref [] in
      let rec seq ops =
        match ops with
        | [] -> ()
        | op :: rest ->
            Adt.Client.execute client ~key:"q" ~op
              ~on_done:(fun ~ok ~result ~latency:_ ->
                Alcotest.(check bool) "op succeeds" true ok;
                (match (op, result) with
                | Adt.Spec.Deq, r -> deqs := r :: !deqs
                | _ -> ());
                seq rest)
      in
      seq [ Adt.Spec.Enq 10; Adt.Spec.Enq 20; Adt.Spec.Deq; Adt.Spec.Deq; Adt.Spec.Deq ];
      Core.run sim;
      match List.rev !deqs with
      | [ Adt.Spec.Value 10; Adt.Spec.Value 20; Adt.Spec.Empty ] -> ()
      | _ -> Alcotest.fail "expected fifo dequeues then empty")

let test_register_end_to_end () =
  with_cluster ~seed:6 (fun sim client ->
      let got = ref Adt.Spec.Empty in
      Adt.Client.execute client ~key:"r" ~op:(Adt.Spec.Set 3)
        ~on_done:(fun ~ok:_ ~result:_ ~latency:_ ->
          Adt.Client.execute client ~key:"r" ~op:(Adt.Spec.Set 8)
            ~on_done:(fun ~ok:_ ~result:_ ~latency:_ ->
              Adt.Client.execute client ~key:"r" ~op:Adt.Spec.Get
                ~on_done:(fun ~ok:_ ~result ~latency:_ -> got := result)));
      Core.run sim;
      Alcotest.(check bool) "last set wins" true (!got = Adt.Spec.Value 8))

(* the headline results, as assertions *)

let test_blind_inc_faster () =
  match Adt.Experiments.counter_comparison () with
  | [ adt; rw ] ->
      Alcotest.(check bool) "adt counter exact" true
        (adt.Adt.Experiments.final_total = adt.expected_total);
      Alcotest.(check bool) "blind mutation at least 1.5x faster" true
        (rw.Adt.Experiments.mutation_mean
        > 1.5 *. adt.Adt.Experiments.mutation_mean)
  | _ -> Alcotest.fail "expected two rows"

let test_no_lost_updates () =
  match Adt.Experiments.race_comparison () with
  | [ adt; rw ] ->
      Alcotest.(check int) "event log loses nothing" 0 adt.Adt.Experiments.lost;
      Alcotest.(check bool) "read-modify-write loses updates" true
        (rw.Adt.Experiments.lost > 0)
  | _ -> Alcotest.fail "expected two rows"

let suites =
  [
    ( "adt.timestamp",
      [
        Alcotest.test_case "total order" `Quick test_timestamp_order;
        Alcotest.test_case "clock monotone past observations" `Quick
          test_clock_monotone;
      ] );
    ( "adt.spec",
      [
        Alcotest.test_case "counter" `Quick test_spec_counter;
        Alcotest.test_case "register" `Quick test_spec_register;
        Alcotest.test_case "queue" `Quick test_spec_queue;
        Alcotest.test_case "operation roles" `Quick test_spec_roles;
      ] );
    ( "adt.log",
      [
        Alcotest.test_case "merge is sorted union" `Quick test_merge_union_sorted;
        Alcotest.test_case "merge idempotent" `Quick test_merge_idempotent;
      ] );
    ( "adt.replicated",
      [
        Alcotest.test_case "counter end to end" `Quick test_counter_end_to_end;
        Alcotest.test_case "queue end to end" `Quick test_queue_end_to_end;
        Alcotest.test_case "register end to end" `Quick test_register_end_to_end;
        Alcotest.test_case "blind increments faster (E13)" `Slow
          test_blind_inc_faster;
        Alcotest.test_case "no lost updates (E13)" `Slow test_no_lost_updates;
      ] );
  ]
