(* Tests for the replicated store: strategies (legality, analytic
   availability), the quorum client protocol, cluster consistency
   audits, and the experiment shapes the paper's claims predict. *)

module Prng = Qc_util.Prng
module Strategy = Store.Strategy

(* ---------- strategies ---------- *)

let test_strategy_legal () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " legal") true (Strategy.legal s))
    [
      ("rowa", Strategy.rowa 5);
      ("majority-5", Strategy.majority 5);
      ("majority-4", Strategy.majority 4);
      ("grid", Strategy.grid ~rows:2 ~cols:3);
      ("primary", Strategy.primary 3);
      ( "weighted",
        Strategy.weighted ~name:"w" ~votes:[| 2; 1; 1 |] ~r:2 ~w:3 );
    ]

let test_strategy_min_quorums () =
  let s = Strategy.rowa 5 in
  Alcotest.(check int) "rowa min read" 1 s.Strategy.min_read;
  Alcotest.(check int) "rowa min write" 5 s.Strategy.min_write;
  let m = Strategy.majority 5 in
  Alcotest.(check int) "majority min read" 3 m.Strategy.min_read;
  Alcotest.(check int) "majority min write" 3 m.Strategy.min_write;
  let g = Strategy.grid ~rows:2 ~cols:3 in
  Alcotest.(check int) "grid min read = cols" 3 g.Strategy.min_read;
  (* one full row (3) + one per other row (1) *)
  Alcotest.(check int) "grid min write" 4 g.Strategy.min_write

let test_strategy_weighted_rejects () =
  Alcotest.check_raises "r+w<=v"
    (Invalid_argument "Strategy.weighted: r + w must exceed v") (fun () ->
      ignore (Strategy.weighted ~name:"bad" ~votes:[| 1; 1; 1 |] ~r:1 ~w:2))

let prop_weighted_strategies_legal =
  QCheck.Test.make ~count:200 ~name:"random weighted strategies legal"
    QCheck.(pair (int_range 0 100_000) (int_range 1 6))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let votes = Array.init n (fun _ -> 1 + Prng.int rng 3) in
      let total = Array.fold_left ( + ) 0 votes in
      let r = 1 + Prng.int rng total in
      let w = total - r + 1 in
      Strategy.legal (Strategy.weighted ~name:"w" ~votes ~r ~w))

(* analytic availability: closed forms for the classical schemes *)
let test_availability_closed_forms () =
  let p = 0.9 and n = 5 in
  let read_rowa, write_rowa = Strategy.availability (Strategy.rowa n) ~p in
  (* read-one: 1 - (1-p)^n; write-all: p^n *)
  Alcotest.(check (float 1e-9)) "rowa read" (1.0 -. ((1.0 -. p) ** 5.0)) read_rowa;
  Alcotest.(check (float 1e-9)) "rowa write" (p ** 5.0) write_rowa;
  let read_m, write_m = Strategy.availability (Strategy.majority n) ~p in
  Alcotest.(check (float 1e-9)) "majority symmetric" read_m write_m;
  let read_p, write_p = Strategy.availability (Strategy.primary n) ~p in
  Alcotest.(check (float 1e-9)) "primary read = p" p read_p;
  Alcotest.(check (float 1e-9)) "primary write = p" p write_p

let test_availability_ordering () =
  (* the paper-predicted shape at any p in (0,1): read availability
     rowa >= majority; write availability majority >= rowa *)
  List.iter
    (fun p ->
      let r_rowa, w_rowa = Strategy.availability (Strategy.rowa 5) ~p in
      let r_maj, w_maj = Strategy.availability (Strategy.majority 5) ~p in
      Alcotest.(check bool) "rowa reads win" true (r_rowa >= r_maj);
      Alcotest.(check bool) "majority writes win" true (w_maj >= w_rowa))
    [ 0.5; 0.7; 0.9; 0.99 ]

let test_mask_of_live () =
  Alcotest.(check int) "mask" 0b101
    (Strategy.mask_of_live ~n:3 (fun i -> i <> 1))

(* ---------- zipf ---------- *)

let test_zipf_monotone_cdf () =
  let z = Store.Workload.zipf ~n:50 ~s:1.0 in
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let k = Store.Workload.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 50)
  done

let test_zipf_skew () =
  let z = Store.Workload.zipf ~n:50 ~s:1.2 in
  let rng = Prng.create 4 in
  let hits = Array.make 50 0 in
  for _ = 1 to 10_000 do
    let k = Store.Workload.sample z rng in
    hits.(k) <- hits.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (hits.(0) > hits.(10));
  Alcotest.(check bool) "rank 0 much hotter than tail" true
    (hits.(0) > 5 * max 1 hits.(40))

(* ---------- cluster consistency audit ---------- *)

let test_cluster_audit_clean () =
  (* across strategies, seeds, and failure regimes: zero violations *)
  List.iter
    (fun (name, strat, failures) ->
      List.iter
        (fun seed ->
          let r =
            Store.Cluster.run
              {
                Store.Cluster.default_params with
                strategy = strat;
                failures;
                seed;
                workload =
                  { Store.Workload.default_spec with ops_per_client = 150 };
              }
          in
          Alcotest.(check (list string))
            (Fmt.str "%s seed %d clean" name seed)
            [] r.Store.Cluster.audit_violations)
        [ 1; 2; 3 ])
    [
      ("majority", Store.Strategy.majority, None);
      ("rowa", Store.Strategy.rowa, None);
      ("grid", (fun _ -> Store.Strategy.grid ~rows:2 ~cols:3), None);
      ( "majority+failures",
        Store.Strategy.majority,
        Some { Sim.Failure.mtbf = 300.0; mttr = 60.0 } );
      ( "rowa+failures",
        Store.Strategy.rowa,
        Some { Sim.Failure.mtbf = 300.0; mttr = 60.0 } );
    ]

let test_cluster_grid_needs_matching_n () =
  (* grid 2x3 needs 6 replicas *)
  let r =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        n_replicas = 6;
        strategy = (fun _ -> Store.Strategy.grid ~rows:2 ~cols:3);
        workload = { Store.Workload.default_spec with ops_per_client = 50 };
      }
  in
  Alcotest.(check (list string)) "clean" [] r.Store.Cluster.audit_violations;
  Alcotest.(check bool) "ops ran" true (r.Store.Cluster.ok_reads > 0)

(* message loss stresses retransmission-free quorum assembly: ops may
   fail but never return wrong data *)
let test_cluster_lossy_network () =
  let r =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        loss = 0.2;
        timeout = 40.0;
        strategy = Store.Strategy.majority;
        workload = { Store.Workload.default_spec with ops_per_client = 150 };
      }
  in
  Alcotest.(check (list string)) "clean under loss" [] r.Store.Cluster.audit_violations

(* ---------- experiment shapes ---------- *)

let test_latency_shape () =
  let rows = Store.Experiments.latency_table ~n:5 () in
  let find name =
    List.find (fun r -> r.Store.Experiments.strategy = name) rows
  in
  let rowa = find "read-one/write-all" and maj = find "majority" in
  Alcotest.(check bool) "rowa reads faster" true
    (rowa.Store.Experiments.read.Sim.Stats.mean
    < maj.Store.Experiments.read.Sim.Stats.mean);
  Alcotest.(check bool) "majority writes faster" true
    (maj.Store.Experiments.write.Sim.Stats.mean
    < rowa.Store.Experiments.write.Sim.Stats.mean)

let test_crossover_shape () =
  let rows = Store.Experiments.crossover ~n:5 () in
  let at f =
    List.find
      (fun (r : Store.Experiments.crossover_row) ->
        r.Store.Experiments.read_fraction = f)
      rows
  in
  Alcotest.(check string) "write-heavy favours majority" "majority"
    (at 0.0).Store.Experiments.winner;
  Alcotest.(check string) "read-heavy favours rowa" "read-one/write-all"
    (at 0.99).Store.Experiments.winner

let test_reconfig_shape () =
  let rows = Store.Experiments.reconfig_experiment () in
  let rate phase =
    match List.find_opt (fun r -> r.Store.Experiments.phase = phase) rows with
    | Some r -> r.Store.Experiments.rate
    | None -> Alcotest.failf "phase %s missing" phase
  in
  Alcotest.(check bool) "healthy near-perfect" true (rate "A-healthy" > 0.98);
  Alcotest.(check bool) "failures hurt" true (rate "B-failed" < 0.8);
  Alcotest.(check bool) "reconfiguration restores" true
    (rate "D-reconfigured" > 0.95)

let test_gifford_rows () =
  let rows = Store.Experiments.gifford_examples () in
  Alcotest.(check int) "three examples" 3 (List.length rows);
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (g.Store.Experiments.label ^ " availabilities in [0,1]")
        true
        (g.read_avail_90 >= 0.0 && g.read_avail_90 <= 1.0
        && g.write_avail_90 >= 0.0
        && g.write_avail_90 <= 1.0))
    rows;
  (* the read-optimized example reads faster than it writes *)
  let g1 = List.hd rows in
  Alcotest.(check bool) "G1 reads cheaper" true
    (g1.Store.Experiments.read_latency < g1.write_latency)

(* ---------- failure edge cases ---------- *)

(* every replica dead: operations must fail cleanly, audit stays clean *)
let test_total_outage () =
  let sim = Sim.Core.create ~seed:3 in
  let replica_names = List.init 3 (fun i -> Fmt.str "r%d" i) in
  let net =
    Sim.Net.create ~sim ~nodes:(replica_names @ [ "c0" ]) ()
  in
  let replicas = List.map (fun name -> Store.Replica.create ~name ()) replica_names in
  List.iter (fun r -> Store.Replica.attach r ~net) replicas;
  List.iter (fun r -> Sim.Net.crash net r) replica_names;
  let client =
    Store.Client.create ~name:"c0" ~sim ~net
      ~replicas:(Array.of_list replica_names)
      ~strategy:(Store.Strategy.majority 3) ~timeout:20.0 ()
  in
  Store.Client.attach client;
  let failures = ref 0 in
  Store.Client.read client ~key:"k" ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ ->
      if not ok then incr failures);
  Store.Client.write client ~key:"k" ~value:1
    ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ -> if not ok then incr failures);
  Sim.Core.run sim;
  Alcotest.(check int) "both ops fail" 2 !failures

(* the install primitive used by reconfiguration migration *)
let test_install_primitive () =
  let sim = Sim.Core.create ~seed:4 in
  let replica_names = List.init 3 (fun i -> Fmt.str "r%d" i) in
  let net = Sim.Net.create ~sim ~nodes:(replica_names @ [ "c0" ]) () in
  let replicas = List.map (fun name -> Store.Replica.create ~name ()) replica_names in
  List.iter (fun r -> Store.Replica.attach r ~net) replicas;
  let client =
    Store.Client.create ~name:"c0" ~sim ~net
      ~replicas:(Array.of_list replica_names)
      ~strategy:(Store.Strategy.majority 3) ()
  in
  Store.Client.attach client;
  let read_back = ref (-1) in
  Store.Client.install client ~key:"k" ~vn:7 ~value:99
    ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ ->
      Alcotest.(check bool) "install ok" true ok;
      Store.Client.read client ~key:"k"
        ~on_done:(fun ~ok ~vn ~value ~latency:_ ->
          Alcotest.(check bool) "read ok" true ok;
          Alcotest.(check int) "version preserved" 7 vn;
          read_back := value));
  Sim.Core.run sim;
  Alcotest.(check int) "installed value read back" 99 !read_back

(* stale installs (lower version) must not clobber newer data *)
let test_stale_install_ignored () =
  let r = Store.Replica.create ~name:"r" () in
  Hashtbl.replace r.Store.Replica.data "k" (5, 50);
  (* simulate a direct stale install via the protocol handler: use a
     small net *)
  let sim = Sim.Core.create ~seed:5 in
  let net = Sim.Net.create ~sim ~nodes:[ "r"; "c" ] () in
  Store.Replica.attach r ~net;
  Sim.Net.register net ~node:"c" (fun ~src:_ _ -> ());
  Sim.Net.send net ~src:"c" ~dst:"r"
    (Store.Protocol.Install_req { rid = 0; key = "k"; vn = 3; value = 30; ctx = None });
  Sim.Core.run sim;
  Alcotest.(check (pair int int)) "newer survives" (5, 50)
    (Store.Replica.lookup r "k")

(* read repair pushes the newest version to stale replicas *)
let test_read_repair_fixes_stale () =
  let sim = Sim.Core.create ~seed:8 in
  let replica_names = List.init 3 (fun i -> Fmt.str "r%d" i) in
  let net = Sim.Net.create ~sim ~nodes:(replica_names @ [ "c0" ]) () in
  let replicas = List.map (fun name -> Store.Replica.create ~name ()) replica_names in
  List.iter (fun r -> Store.Replica.attach r ~net) replicas;
  (* r2 is stale by hand *)
  let r0 = List.nth replicas 0 and r2 = List.nth replicas 2 in
  Hashtbl.replace r0.Store.Replica.data "k" (5, 50);
  Hashtbl.replace (List.nth replicas 1).Store.Replica.data "k" (5, 50);
  Hashtbl.replace r2.Store.Replica.data "k" (2, 20);
  let client =
    Store.Client.create ~name:"c0" ~sim ~net
      ~replicas:(Array.of_list replica_names)
      ~strategy:
        ((* read-all so the stale replica is among the replies *)
         Store.Strategy.make ~name:"read-all" ~n:3
           ~read_ok:(fun m -> m = 0b111)
           ~write_ok:(fun m -> m <> 0))
      ~read_repair:true ()
  in
  Store.Client.attach client;
  Store.Client.read client ~key:"k" ~on_done:(fun ~ok ~vn ~value ~latency:_ ->
      Alcotest.(check bool) "read ok" true ok;
      Alcotest.(check int) "newest version" 5 vn;
      Alcotest.(check int) "newest value" 50 value);
  Sim.Core.run sim;
  Alcotest.(check int) "repair sent" 1
    (Obs.Metrics.value client.Store.Client.repairs_sent);
  Alcotest.(check (pair int int)) "stale replica repaired" (5, 50)
    (Store.Replica.lookup r2 "k")

let test_read_repair_experiment_shape () =
  match Store.Experiments.read_repair_experiment () with
  | [ off; on ] ->
      Alcotest.(check bool) "failures produce staleness" true
        (off.Store.Experiments.staleness_mid > 0.1);
      Alcotest.(check bool) "without repair, staleness persists" true
        (off.staleness_end >= off.staleness_mid -. 0.01);
      Alcotest.(check bool) "with repair, staleness vanishes" true
        (on.Store.Experiments.staleness_end < 0.05);
      Alcotest.(check bool) "repairs were sent" true (on.repairs_sent > 0)
  | _ -> Alcotest.fail "expected two rows"

(* analytic availability is monotone in p for every strategy *)
let prop_availability_monotone =
  QCheck.Test.make ~count:50 ~name:"availability monotone in p"
    QCheck.(pair (float_bound_exclusive 0.49) (int_range 2 7))
    (fun (dp, n) ->
      let p1 = 0.5 -. dp and p2 = 0.5 +. dp in
      List.for_all
        (fun s ->
          let r1, w1 = Strategy.availability s ~p:p1 in
          let r2, w2 = Strategy.availability s ~p:p2 in
          r2 +. 1e-12 >= r1 && w2 +. 1e-12 >= w1)
        [ Strategy.rowa n; Strategy.majority n; Strategy.primary n ])

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "store.strategy",
      [
        Alcotest.test_case "families legal" `Quick test_strategy_legal;
        Alcotest.test_case "minimum quorum sizes" `Quick test_strategy_min_quorums;
        Alcotest.test_case "weighted validation" `Quick test_strategy_weighted_rejects;
        qcheck prop_weighted_strategies_legal;
        Alcotest.test_case "closed-form availability" `Quick
          test_availability_closed_forms;
        Alcotest.test_case "availability ordering" `Quick test_availability_ordering;
        Alcotest.test_case "mask_of_live" `Quick test_mask_of_live;
      ] );
    ( "store.workload",
      [
        Alcotest.test_case "zipf sampling range" `Quick test_zipf_monotone_cdf;
        Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
      ] );
    ( "store.cluster",
      [
        Alcotest.test_case "audit clean across regimes" `Slow
          test_cluster_audit_clean;
        Alcotest.test_case "grid cluster" `Quick test_cluster_grid_needs_matching_n;
        Alcotest.test_case "lossy network" `Quick test_cluster_lossy_network;
      ] );
    ( "store.failures",
      [
        Alcotest.test_case "total outage fails cleanly" `Quick test_total_outage;
        Alcotest.test_case "install primitive" `Quick test_install_primitive;
        Alcotest.test_case "stale install ignored" `Quick
          test_stale_install_ignored;
        Alcotest.test_case "read repair fixes stale replica" `Quick
          test_read_repair_fixes_stale;
        Alcotest.test_case "read repair experiment shape" `Quick
          test_read_repair_experiment_shape;
        qcheck prop_availability_monotone;
      ] );
    ( "store.experiments",
      [
        Alcotest.test_case "latency shape (Q2)" `Slow test_latency_shape;
        Alcotest.test_case "crossover shape (Q3)" `Slow test_crossover_shape;
        Alcotest.test_case "reconfiguration shape (Q4)" `Quick test_reconfig_shape;
        Alcotest.test_case "gifford examples (G1-G3)" `Quick test_gifford_rows;
      ] );
  ]

(* ---------- partition nemesis ---------- *)

let test_partition_nemesis_consistency () =
  (* random bipartitions every ~150 time units: availability drops but
     the audit must remain clean for quorum strategies *)
  List.iter
    (fun (name, strat) ->
      List.iter
        (fun seed ->
          let r =
            Store.Cluster.run
              {
                Store.Cluster.default_params with
                strategy = strat;
                partitions = Some 150.0;
                timeout = 40.0;
                workload =
                  { Store.Workload.default_spec with ops_per_client = 200 };
                seed;
              }
          in
          Alcotest.(check (list string))
            (Fmt.str "%s seed %d: clean under partitions" name seed)
            [] r.Store.Cluster.audit_violations;
          Alcotest.(check bool)
            (Fmt.str "%s seed %d: some ops survive" name seed)
            true
            (r.ok_reads + r.ok_writes > 0))
        [ 1; 2; 3; 4 ])
    [ ("majority", Store.Strategy.majority); ("rowa", Store.Strategy.rowa) ]

let test_partition_nemesis_hurts_availability () =
  let run partitions =
    Store.Cluster.availability
      (Store.Cluster.run
         {
           Store.Cluster.default_params with
           partitions;
           timeout = 40.0;
           workload = { Store.Workload.default_spec with ops_per_client = 200 };
           seed = 7;
         })
  in
  let healthy = run None and partitioned = run (Some 150.0) in
  Alcotest.(check bool)
    (Fmt.str "partitions reduce availability (%.3f < %.3f)" partitioned healthy)
    true
    (partitioned < healthy)

let nemesis_suite =
  ( "store.nemesis",
    [
      Alcotest.test_case "consistency under random partitions" `Slow
        test_partition_nemesis_consistency;
      Alcotest.test_case "partitions hurt availability" `Quick
        test_partition_nemesis_hurts_availability;
    ] )

let suites = suites @ [ nemesis_suite ]

(* ---------- optimal configurations ---------- *)

let test_optimal_dominates_classics () =
  List.iter
    (fun (r : Store.Experiments.optimum_row) ->
      Alcotest.(check bool)
        (Fmt.str "p=%.2f f=%.2f: optimum >= rowa" r.Store.Experiments.p
           r.read_fraction)
        true
        (r.score +. 1e-9 >= r.rowa_score);
      Alcotest.(check bool)
        (Fmt.str "p=%.2f f=%.2f: optimum >= majority" r.Store.Experiments.p
           r.read_fraction)
        true
        (r.score +. 1e-9 >= r.majority_score))
    (Store.Experiments.optimal_configurations ~ps:[ 0.8; 0.9 ]
       ~fractions:[ 0.1; 0.9 ] ())

let test_optimal_thresholds_legal () =
  List.iter
    (fun (r : Store.Experiments.optimum_row) ->
      let total = List.fold_left ( + ) 0 r.Store.Experiments.votes in
      Alcotest.(check int) "minimal legality" (total + 1) (r.r + r.w))
    (Store.Experiments.optimal_configurations ~ps:[ 0.9 ] ~fractions:[ 0.5 ] ())

let optimal_suite =
  ( "store.optimal",
    [
      Alcotest.test_case "optimum dominates classical extremes" `Slow
        test_optimal_dominates_classics;
      Alcotest.test_case "optimal thresholds minimally legal" `Slow
        test_optimal_thresholds_legal;
    ] )

let suites = suites @ [ optimal_suite ]

(* ---------- targeted quorums and load ---------- *)

let test_targeted_mode_consistent () =
  (* the audit must stay clean in targeted mode too *)
  List.iter
    (fun seed ->
      let r =
        Store.Cluster.run
          {
            Store.Cluster.default_params with
            targeting = `Quorum;
            workload = { Store.Workload.default_spec with ops_per_client = 150 };
            seed;
          }
      in
      Alcotest.(check (list string))
        (Fmt.str "seed %d clean (targeted)" seed)
        [] r.Store.Cluster.audit_violations;
      Alcotest.(check bool) "ops ran" true (r.ok_reads + r.ok_writes > 0))
    [ 1; 2; 3 ]

let test_minimal_quorums () =
  let s = Store.Strategy.majority 4 in
  let qs = Store.Strategy.minimal_read_quorums s in
  (* all 3-of-4 subsets *)
  Alcotest.(check int) "C(4,3) minimal quorums" 4 (List.length qs);
  List.iter
    (fun q -> Alcotest.(check int) "size 3" 3 (Store.Strategy.popcount q))
    qs;
  let rowa = Store.Strategy.rowa 4 in
  Alcotest.(check int) "rowa minimal reads are singletons" 4
    (List.length (Store.Strategy.minimal_read_quorums rowa));
  Alcotest.(check int) "rowa minimal write is the full set" 1
    (List.length (Store.Strategy.minimal_write_quorums rowa))

let test_load_shape () =
  let rows = Store.Experiments.load_table () in
  let find name mode =
    List.find
      (fun (r : Store.Experiments.load_row) ->
        r.strategy_name = name && r.mode = mode)
      rows
  in
  (* targeting cuts messages *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ ": targeted uses fewer messages")
        true
        ((find name "targeted").messages < (find name "broadcast").messages))
    [ "majority-6"; "grid-2x3"; "primary-weighted" ];
  (* the weighted scheme hot-spots its big site under targeting;
     majority and grid stay (near) flat *)
  Alcotest.(check bool) "primary-weighted hot-spots" true
    ((find "primary-weighted" "targeted").load_imbalance > 1.8);
  Alcotest.(check bool) "majority stays flat" true
    ((find "majority-6" "targeted").load_imbalance < 1.3);
  Alcotest.(check bool) "grid stays flat" true
    ((find "grid-2x3" "targeted").load_imbalance < 1.3);
  (* broadcast wins mean read latency (quorum-wide hedging) *)
  Alcotest.(check bool) "broadcast reads faster" true
    ((find "majority-6" "broadcast").read_mean
    < (find "majority-6" "targeted").read_mean)

let load_suite =
  ( "store.load",
    [
      Alcotest.test_case "targeted mode consistent" `Quick
        test_targeted_mode_consistent;
      Alcotest.test_case "minimal quorum enumeration" `Quick test_minimal_quorums;
      Alcotest.test_case "load/messages shape" `Slow test_load_shape;
    ] )

let suites = suites @ [ load_suite ]
