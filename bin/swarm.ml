(* The seed-swarm fuzzer CLI.

   `swarm sweep` pushes a range of seeds through randomized fault
   scripts against a simulated cluster, audits every run
   (single-writer consistency + liveness after heal), minimizes any
   failure to a smaller script, prints a replayable `swarm repro`
   one-liner per failure and optionally a JSON report.  `swarm repro`
   replays one (seed, script) pair and reports the violations.

   Exit status: 0 when every audited run is clean, 1 when any
   violation was found (including a successful repro — reproducing a
   violation is a failing exit so CI can gate on it). *)

module Prng = Qc_util.Prng
module Script = Harness.Script

type shape = {
  shards : int;
  replicas : int;
  clients : int;
  ops : int;
  unsafe : bool;
  txn : Store.Txn.mode option;
      (* [Some _] swaps the single-key op loop for the cross-shard
         transaction workload and arms coordinator-kill episodes *)
  tune : bool;
      (* enable the workload-aware quorum optimizer + read steering,
         so the fuzzer audits runs that re-strategize mid-flight *)
}

(* mirror Cluster.run's naming so generated scripts target real nodes *)
let groups_of shape =
  if shape.shards = 1 then
    [| Array.init shape.replicas (fun i -> Fmt.str "r%d" i) |]
  else
    Array.init shape.shards (fun s ->
        Array.init shape.replicas (fun i -> Fmt.str "s%d:r%d" s i))

let client_names shape = List.init shape.clients (fun i -> Fmt.str "c%d" i)

(* read-1/write-1 quorums do not intersect: the planted bug used by
   the CI canary to prove the swarm catches real violations *)
let unsafe_strategy n =
  Store.Strategy.make ~name:"unsafe-1/1" ~n
    ~read_ok:(fun m -> Store.Strategy.popcount m >= 1)
    ~write_ok:(fun m -> Store.Strategy.popcount m >= 1)

let run_one shape ~seed script =
  let r =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        n_replicas = shape.replicas;
        n_clients = shape.clients;
        n_shards = shape.shards;
        strategy =
          (if shape.unsafe then unsafe_strategy else Store.Strategy.majority);
        targeting = `Quorum;
        policy = Rpc.Policy.with_hedge ~base:(Rpc.Policy.with_retries 2) 12.0;
        workload =
          {
            Store.Workload.default_spec with
            ops_per_client = shape.ops;
            read_fraction = 0.5;
          };
        seed;
        script;
        txns =
          Option.map
            (fun mode ->
              (* timescales matched to the 300-unit script horizon:
                 the default 400-unit coordinator deadline and 150-unit
                 recovery base would leave post-fault lock releases
                 later than the last scripted heal, failing liveness on
                 workload exhaustion rather than on a real bug *)
              {
                Store.Cluster.default_txn_spec with
                commit_mode = mode;
                txns_per_client = max 4 (shape.ops / 2);
                txn_timeout = 80.0;
                txn_retries = 3;
                recovery_delay = 40.0;
              })
            shape.txn;
        tune =
          (if shape.tune then Some Store.Cluster.default_tune_spec else None);
      }
  in
  let audit = r.Store.Cluster.audit_violations in
  let audit =
    (* Paxos Commit is the non-blocking protocol: any transaction still
       prepared-but-undecided once the script has quiesced is a bug.
       Under 2PC blocked transactions are the expected cost, not a
       violation — the ablation table quantifies them instead. *)
    match (shape.txn, r.Store.Cluster.blocked_txns) with
    | Some `Paxos, (_ :: _ as blocked) ->
        audit
        @ [ Fmt.str "paxos-commit left %d txn(s) blocked: %s"
              (List.length blocked)
              (String.concat "," blocked) ]
    | _ -> audit
  in
  (* a 2PC run with transactions stranded in doubt is in the protocol's
     documented blocking regime: their locks legitimately starve later
     conflicting transactions, so liveness-after-heal (an AC5-shaped
     claim) does not apply — that cost is quantified by `tables.exe
     txn`, not flagged here.  Every other configuration keeps the
     check. *)
  let blocking_2pc =
    shape.txn = Some `Two_phase && r.Store.Cluster.blocked_txns <> []
  in
  if blocking_2pc then audit
  else
    match
      Harness.Check.liveness_after_heal ~script
        ~completions:r.Store.Cluster.completions
    with
    | Ok () -> audit
    | Error e -> audit @ [ Fmt.str "liveness: %s" e ]

let gen_for shape ~seed =
  Harness.Gen.script
    ~txn:(shape.txn <> None)
    (Prng.create seed) ~groups:(groups_of shape)
    ~clients:(client_names shape) ~horizon:300.0

let extra_flags shape =
  Fmt.str "--shards %d --replicas %d --clients %d --ops %d%s%s%s" shape.shards
    shape.replicas shape.clients shape.ops
    (if shape.unsafe then " --unsafe" else "")
    (match shape.txn with
    | None -> ""
    | Some m -> " --txn " ^ Store.Txn.mode_label m)
    (if shape.tune then " --tune" else "")

let sweep shape seeds seed0 max_failures json_path =
  (* fail fast on a structurally broken configuration: fuzzing a
     known-illegal quorum system would only report it slowly *)
  (if not shape.unsafe then
     let members = List.init shape.replicas (fun i -> Fmt.str "r%d" i) in
     match
       Harness.Check.quorum_ok ~name:"majority" (Quorum.Config.majority members)
     with
     | Ok () -> ()
     | Error e -> Fmt.epr "static quorum gate: %s@." e);
  let run ~seed script = run_one shape ~seed script in
  let failures =
    Harness.Swarm.sweep ~run ~gen:(gen_for shape) ~seeds ~seed0 ~max_failures
      ~progress:(fun ~seed ~failed ->
        if failed then Fmt.pr "seed %d: VIOLATION@." seed)
      ()
  in
  let minimized = List.map (Harness.Swarm.minimize ~run) failures in
  let extra = extra_flags shape in
  let report =
    { Harness.Swarm.seeds; seed0; failures; minimized }
  in
  Fmt.pr "swept %d seeds from %d: %d failing@." seeds seed0
    (List.length failures);
  List.iter
    (fun (m : Harness.Swarm.outcome) ->
      Fmt.pr "@.seed %d minimized to %d step(s): %s@."
        m.Harness.Swarm.seed
        (List.length m.Harness.Swarm.script)
        (Script.to_string m.Harness.Swarm.script);
      List.iter (fun v -> Fmt.pr "  violation: %s@." v)
        m.Harness.Swarm.violations;
      Fmt.pr "  repro: %s@." (Harness.Swarm.repro_line ~extra m))
    minimized;
  (match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Harness.Swarm.report_json ~extra report);
      close_out oc;
      Fmt.pr "report written to %s@." path);
  if failures = [] then 0 else 1

let repro shape seed script_str =
  match Script.of_string script_str with
  | Error e ->
      Fmt.epr "cannot parse script: %s@." e;
      2
  | Ok script -> (
      match Script.validate script with
      | Error e ->
          Fmt.epr "invalid script: %s@." e;
          2
      | Ok () ->
          let violations = run_one shape ~seed script in
          Fmt.pr "seed %d, script: %s@." seed (Script.to_string script);
          if violations = [] then begin
            Fmt.pr "audit clean — violation did not reproduce@.";
            0
          end
          else begin
            List.iter (fun v -> Fmt.pr "violation: %s@." v) violations;
            1
          end)

(* ---------- CLI ---------- *)

open Cmdliner

let shape_term =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Replica groups.")
  in
  let replicas =
    Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Replicas per shard.")
  in
  let clients = Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Clients.") in
  let ops =
    Arg.(value & opt int 40 & info [ "ops" ] ~doc:"Operations per client.")
  in
  let unsafe =
    Arg.(
      value & flag
      & info [ "unsafe" ]
          ~doc:
            "Run with non-intersecting read-1/write-1 quorums — the planted \
             bug.  The audit must catch it; CI uses this as the canary that \
             the swarm finds real violations.")
  in
  let txn =
    let mode_conv =
      Arg.enum [ ("off", None); ("2pc", Some `Two_phase); ("paxos", Some `Paxos) ]
    in
    Arg.(
      value & opt mode_conv None
      & info [ "txn" ] ~docv:"MODE"
          ~doc:
            "Cross-shard transaction workload: $(b,off) (default, single-key \
             ops), $(b,2pc) (blocking two-phase commit), or $(b,paxos) \
             (Paxos Commit).  Arms coordinator-kill fault episodes; under \
             $(b,paxos) any transaction left blocked after quiescence is a \
             violation.")
  in
  let tune =
    Arg.(
      value & flag
      & info [ "tune" ]
          ~doc:
            "Enable the workload-aware quorum optimizer and queue-aware read \
             steering, so runs re-strategize mid-flight (joint-strategy \
             transition + key migration) while the fault scripts fire.  The \
             audits must stay clean across every committed switch.")
  in
  Term.(
    const (fun shards replicas clients ops unsafe txn tune ->
        { shards; replicas; clients; ops; unsafe; txn; tune })
    $ shards $ replicas $ clients $ ops $ unsafe $ txn $ tune)

let sweep_cmd =
  let seeds =
    Arg.(value & opt int 100 & info [ "seeds" ] ~doc:"Seeds to sweep.")
  in
  let seed0 = Arg.(value & opt int 0 & info [ "seed0" ] ~doc:"First seed.") in
  let max_failures =
    Arg.(
      value & opt int 10
      & info [ "max-failures" ] ~doc:"Stop after this many failing seeds.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the JSON report here.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep seeds through randomized fault scripts, audit every run, \
          minimize failures (exit 1 on any violation).")
    Term.(
      const sweep $ shape_term $ seeds $ seed0 $ max_failures $ json)

let repro_cmd =
  let seed =
    Arg.(
      required
      & opt (some int) None
      & info [ "seed" ] ~doc:"Seed of the failing run.")
  in
  let script =
    Arg.(
      value & opt string ""
      & info [ "script" ] ~docv:"SCRIPT"
          ~doc:"The fault script, in Harness.Script text form.")
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:
         "Replay one (seed, script) pair and report audit violations (exit 1 \
          when the violation reproduces).")
    Term.(const repro $ shape_term $ seed $ script)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "swarm"
             ~doc:
               "Seed-swarm fuzzer for the simulated cluster: randomized \
                fault schedules, consistency audit, failure minimization.")
          [ sweep_cmd; repro_cmd ]))
