(* Determinism lint + static quorum checker, CI-gated.

     lint.exe [--json FILE] PATH...     lint every .ml under PATHs
     lint.exe quorum [--json FILE]      static quorum-intersection check

   Exit codes: 0 clean, 1 findings/violations, 2 usage or I/O error.

   The code lint walks parse trees (compiler-libs) for the three
   determinism rules (effect ban, Hashtbl iteration order, float
   comparison) plus pragma hygiene; the quorum subcommand verifies
   read/write and write/write intersection, minimality and
   non-domination for every shipped configuration family without
   running the simulator.  See DESIGN.md section 12. *)

let usage () =
  Fmt.epr
    "usage: lint.exe [--json FILE] PATH...@.       lint.exe quorum [--json \
     FILE]@.";
  exit 2

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* --json FILE anywhere in the argument list; the rest are operands *)
let split_json args =
  let rec go json rev = function
    | [] -> (json, List.rev rev)
    | "--json" :: file :: rest -> go (Some file) rev rest
    | [ "--json" ] -> usage ()
    | a :: rest -> go json (a :: rev) rest
  in
  go None [] args

let run_quorum json =
  let summary =
    match Lint.Quorum_check.run () with Ok s -> s | Error s -> s
  in
  Fmt.pr "%a" Lint.Quorum_check.pp_summary summary;
  Option.iter
    (fun file -> write_file file (Lint.Quorum_check.to_json summary))
    json;
  exit (if summary.Lint.Quorum_check.violations = [] then 0 else 1)

let run_lint json paths =
  match Lint.Rules.lint_paths paths with
  | Error e ->
      Fmt.epr "lint: %s@." e;
      exit 2
  | Ok findings ->
      Option.iter
        (fun file -> write_file file (Lint.Report.to_json findings))
        json;
      if findings = [] then begin
        Fmt.pr "lint: clean (%s)@." (String.concat " " paths);
        exit 0
      end
      else begin
        Fmt.pr "%s@." (Lint.Report.to_text findings);
        Fmt.pr "lint: %d finding(s)@." (List.length findings);
        exit 1
      end

let () =
  match split_json (List.tl (Array.to_list Sys.argv)) with
  | json, [ "quorum" ] -> run_quorum json
  | _, [] -> usage ()
  | json, paths -> run_lint json paths
