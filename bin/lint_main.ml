(* Determinism lint + static quorum checker + whole-program analyzer,
   CI-gated.

     lint.exe [OPTS] PATH...     lint every .ml under PATHs (parse trees)
     lint.exe quorum [--json FILE]
                                 static quorum-intersection check
     lint.exe analyze [OPTS]     whole-program passes over typedtrees
                                 (effect taint, handler totality,
                                 lock-order discipline)

   Options:
     --json FILE      also write the findings as JSON
     --only RULE      keep only findings of RULE (repeatable)
     --exclude RULE   drop findings of RULE (repeatable)
     --build DIR      analyze: build dir holding .cmt files
                      (default _build/default)
     --src PREFIX     analyze: only units whose source path starts with
                      PREFIX (repeatable; default lib/)

   Exit codes: 0 clean, 1 findings/violations, 2 usage or I/O error.

   The code lint walks parse trees (compiler-libs) for the three
   determinism rules (effect ban, Hashtbl iteration order, float
   comparison) plus pragma hygiene; the quorum subcommand verifies
   read/write and write/write intersection, minimality and
   non-domination for every shipped configuration family without
   running the simulator; the analyze subcommand reads the typedtrees
   dune already produced and proves the interprocedural protocol
   invariants.  See DESIGN.md sections 12 and 17. *)

let usage () =
  Fmt.epr
    "usage: lint.exe [--json FILE] [--only RULE] [--exclude RULE] PATH...@.\
    \       lint.exe quorum [--json FILE]@.\
    \       lint.exe analyze [--json FILE] [--build DIR] [--src PREFIX] \
     [--only RULE] [--exclude RULE]@.";
  exit 2

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

type opts = {
  json : string option;
  only : string list;
  exclude : string list;
  build : string;
  srcs : string list;  (** reversed; empty means default *)
  operands : string list;
}

(* options anywhere in the argument list; the rest are operands *)
let parse_opts args =
  let rec go o = function
    | [] -> { o with only = List.rev o.only; exclude = List.rev o.exclude;
              operands = List.rev o.operands }
    | "--json" :: file :: rest -> go { o with json = Some file } rest
    | "--only" :: rule :: rest -> go { o with only = rule :: o.only } rest
    | "--exclude" :: rule :: rest ->
        go { o with exclude = rule :: o.exclude } rest
    | "--build" :: dir :: rest -> go { o with build = dir } rest
    | "--src" :: prefix :: rest -> go { o with srcs = prefix :: o.srcs } rest
    | [ ("--json" | "--only" | "--exclude" | "--build" | "--src") ] ->
        usage ()
    | a :: rest -> go { o with operands = a :: o.operands } rest
  in
  go
    { json = None; only = []; exclude = []; build = "_build/default";
      srcs = []; operands = [] }
    args

(* every rule id either mode can emit — a typo'd --only RULE is a
   usage error, not a silently-empty report *)
let known_rules =
  [
    Lint.Rules.rule_effect;
    Lint.Rules.rule_hashtbl;
    Lint.Rules.rule_float;
    Lint.Rules.rule_parse;
    Lint.Rules.rule_unknown_pragma;
    Lint.Rules.rule_unused_pragma;
  ]
  @ Lint.Analyze.all_rules

let check_rules names =
  List.iter
    (fun r ->
      if not (List.mem r known_rules) then begin
        Fmt.epr "lint: unknown rule %S (known: %s)@." r
          (String.concat ", " known_rules);
        exit 2
      end)
    names

let filter_findings ~only ~exclude findings =
  List.filter
    (fun (f : Lint.Report.finding) ->
      (only = [] || List.mem f.rule only) && not (List.mem f.rule exclude))
    findings

let report ~json ~label findings =
  Option.iter (fun file -> write_file file (Lint.Report.to_json findings)) json;
  if findings = [] then begin
    Fmt.pr "lint: clean (%s)@." label;
    exit 0
  end
  else begin
    Fmt.pr "%s@." (Lint.Report.to_text findings);
    Fmt.pr "lint: %d finding(s)@." (List.length findings);
    exit 1
  end

let run_quorum json =
  let summary =
    match Lint.Quorum_check.run () with Ok s -> s | Error s -> s
  in
  Fmt.pr "%a" Lint.Quorum_check.pp_summary summary;
  Option.iter
    (fun file -> write_file file (Lint.Quorum_check.to_json summary))
    json;
  exit (if summary.Lint.Quorum_check.violations = [] then 0 else 1)

let run_lint o =
  check_rules (o.only @ o.exclude);
  match Lint.Rules.lint_paths o.operands with
  | Error e ->
      Fmt.epr "lint: %s@." e;
      exit 2
  | Ok findings ->
      let findings = filter_findings ~only:o.only ~exclude:o.exclude findings in
      report ~json:o.json ~label:(String.concat " " o.operands) findings

let run_analyze o =
  check_rules (o.only @ o.exclude);
  if o.operands <> [] then usage ();
  let src_prefixes =
    match o.srcs with [] -> [ "lib/" ] | l -> List.rev l
  in
  match
    Lint.Analyze.run ~only:o.only ~exclude:o.exclude ~build_dir:o.build
      ~src_prefixes ()
  with
  | Error e ->
      Fmt.epr "lint: %s@." e;
      exit 2
  | Ok findings ->
      report ~json:o.json
        ~label:(Fmt.str "analyze %s" (String.concat " " src_prefixes))
        findings

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "quorum" :: rest -> (
      match parse_opts rest with
      | { operands = []; only = []; exclude = []; json; _ } -> run_quorum json
      | _ -> usage ())
  | "analyze" :: rest -> run_analyze (parse_opts rest)
  | args -> (
      match parse_opts args with
      | { operands = []; _ } -> usage ()
      | o -> run_lint o)
