(* Regenerates every experiment table of DESIGN.md's index.

   Usage:  tables.exe [COMMAND]
   Commands: e5 (formal checks), availability, latency, crossover,
   gifford, reconfig, theorem11, recon, all (default). *)

let bar = String.make 78 '-'

let header title =
  Fmt.pr "@.%s@.%s@.%s@." bar title bar

(* ---------- formal results (E5-E12): seeds x checks ---------- *)

let formal_table seeds =
  header
    (Fmt.str
       "E5-E10: Lemmas 5-8 + Theorem 10 on %d random replicated serial systems"
       seeds);
  Fmt.pr "%-8s %-8s %-10s %-8s %-10s@." "seed" "steps" "quiescent" "items"
    "verdict";
  let failures = ref 0 in
  for seed = 1 to seeds do
    match Quorum.Harness.run_and_check ~seed () with
    | Ok r ->
        if seed <= 10 || seed mod 25 = 0 then
          Fmt.pr "%-8d %-8d %-10b %-8d %-10s@." seed r.Quorum.Harness.steps
            r.quiescent r.items "OK"
    | Error e ->
        incr failures;
        Fmt.pr "%-8d %-38s@." seed e
  done;
  Fmt.pr "...@.TOTAL: %d/%d runs pass every check (Lemma 5, 6, 7, 8; Thm 10)@."
    (seeds - !failures) seeds;
  header (Fmt.str "E12: Section 4 reconfiguration invariants on %d random systems" (seeds / 2));
  let rfail = ref 0 and recons = ref 0 in
  for seed = 1 to seeds / 2 do
    match Recon.Harness.run_and_check ~seed () with
    | Ok r -> recons := !recons + r.Recon.Harness.recons_fired
    | Error e ->
        incr rfail;
        Fmt.pr "%-8d %-38s@." seed e
  done;
  Fmt.pr "TOTAL: %d/%d recon runs pass (with %d reconfigurations exercised)@."
    ((seeds / 2) - !rfail) (seeds / 2) !recons

(* ---------- Q1 availability ---------- *)

let availability_table () =
  header "Q1: availability vs per-site availability p (n = 5 replicas)";
  Fmt.pr "%-28s %-6s %-12s %-12s %-10s@." "strategy" "p" "read(anal)"
    "write(anal)" "simulated";
  List.iter
    (fun (r : Store.Experiments.availability_row) ->
      Fmt.pr "%-28s %-6.2f %-12.4f %-12.4f %-10.4f@."
        r.Store.Experiments.strategy r.p r.read_analytic r.write_analytic
        r.simulated)
    (Store.Experiments.availability_sweep ())

(* ---------- Q2 latency ---------- *)

let latency_table () =
  header "Q2: operation latency by strategy (n = 5, lognormal link latency)";
  Fmt.pr "%-28s %-5s %-5s %-28s %-28s@." "strategy" "|rq|" "|wq|"
    "read latency" "write latency";
  List.iter
    (fun (r : Store.Experiments.latency_row) ->
      Fmt.pr "%-28s %-5d %-5d %-28s %-28s@." r.Store.Experiments.strategy
        r.min_read_quorum r.min_write_quorum
        (Fmt.str "%a" Sim.Stats.pp_summary r.read)
        (Fmt.str "%a" Sim.Stats.pp_summary r.write))
    (Store.Experiments.latency_table ())

(* ---------- Q3 crossover ---------- *)

let crossover_table () =
  header "Q3: mean op latency, read-one/write-all vs majority, by read fraction";
  Fmt.pr "%-15s %-12s %-12s %-20s@." "read fraction" "rowa" "majority" "winner";
  List.iter
    (fun (r : Store.Experiments.crossover_row) ->
      Fmt.pr "%-15.2f %-12.2f %-12.2f %-20s@." r.Store.Experiments.read_fraction
        r.rowa_mean r.majority_mean r.winner)
    (Store.Experiments.crossover ())

(* ---------- G1-G3 ---------- *)

let gifford_table () =
  header "G1-G3: weighted-voting configurations (Gifford-style examples)";
  Fmt.pr "%-24s %-14s %-4s %-4s %-5s %-5s %-9s %-9s %-8s %-8s@." "example"
    "votes" "r" "w" "|rq|" "|wq|" "Ar(p=.9)" "Aw(p=.9)" "lat(r)" "lat(w)";
  List.iter
    (fun (g : Store.Experiments.gifford_row) ->
      Fmt.pr "%-24s %-14s %-4d %-4d %-5d %-5d %-9.4f %-9.4f %-8.2f %-8.2f@."
        g.Store.Experiments.label
        (String.concat "," (List.map string_of_int g.votes))
        g.r g.w g.min_read_quorum g.min_write_quorum g.read_avail_90
        g.write_avail_90 g.read_latency g.write_latency)
    (Store.Experiments.gifford_examples ())

(* ---------- Q4 reconfiguration ---------- *)

let reconfig_table () =
  header
    "Q4: reconfiguration restores availability (RoWa/5 -> 2 replicas die -> \
     majority over survivors)";
  Fmt.pr "%-18s %-8s %-8s %-8s@." "phase" "ok" "failed" "rate";
  List.iter
    (fun (r : Store.Experiments.reconfig_row) ->
      Fmt.pr "%-18s %-8d %-8d %-8.3f@." r.Store.Experiments.phase r.ok r.failed
        r.rate)
    (Store.Experiments.reconfig_experiment ())

(* ---------- E13 ADT extension ---------- *)

let adt_table () =
  header
    "E13 (extension): General Quorum Consensus for ADTs vs read-write quorums \
     (counter, n = 5, majority)";
  Fmt.pr "%-34s %-10s %-10s %-10s %-8s %-10s@." "scheme" "mut mean" "mut p90"
    "obs mean" "rounds" "counter";
  List.iter
    (fun (r : Adt.Experiments.row) ->
      Fmt.pr "%-34s %-10.2f %-10.2f %-10.2f %-8.1f %d/%d@."
        r.Adt.Experiments.scheme r.mutation_mean r.mutation_p90 r.observe_mean
        r.rounds_per_mutation r.final_total r.expected_total)
    (Adt.Experiments.counter_comparison ());
  Fmt.pr "@.lost updates under two racing incrementers (100 each):@.";
  Fmt.pr "%-24s %-8s %-8s %-8s@." "scheme" "done" "final" "lost";
  List.iter
    (fun (r : Adt.Experiments.race_row) ->
      Fmt.pr "%-24s %-8d %-8d %-8d@." r.Adt.Experiments.scheme r.issued r.final
        r.lost)
    (Adt.Experiments.race_comparison ())

(* ---------- load: broadcast vs targeted quorums ---------- *)

let load_table () =
  header
    "Load & messages: broadcast vs targeted-quorum routing (n = 6, 80% reads)";
  Fmt.pr "%-18s %-11s %-10s %-10s %-12s %-10s@." "strategy" "mode" "messages"
    "read mean" "availability" "imbalance";
  List.iter
    (fun (r : Store.Experiments.load_row) ->
      Fmt.pr "%-18s %-11s %-10d %-10.2f %-12.3f %-10.2f@."
        r.Store.Experiments.strategy_name r.mode r.messages r.read_mean
        r.availability r.load_imbalance)
    (Store.Experiments.load_table ());
  Fmt.pr
    "@.shape: targeting cuts messages ~n/|q|-fold and reveals the load axis \
     (grid spreads it; a primary-weighted scheme hot-spots the big site); \
     broadcast hides load but wins tail latency via quorum-wide hedging.@."

(* ---------- retry/backoff/hedging policy ablation ---------- *)

let retry_table () =
  header
    "Retry & hedging ablation: success rate and latency vs RPC policy under \
     loss and partitions (majority-5, targeted quorums)";
  Fmt.pr "%-22s %-12s %-6s %-8s %-9s %-10s %-10s %-8s %-7s %-7s@." "policy"
    "condition" "ok" "failed" "success" "read mean" "messages" "retries"
    "hedges" "audit";
  List.iter
    (fun (r : Store.Experiments.retry_row) ->
      Fmt.pr "%-22s %-12s %-6d %-8d %-9.3f %-10.2f %-10d %-8d %-7d %-7s@."
        r.Store.Experiments.policy_name r.condition r.ok_ops r.failed_ops
        r.success_rate r.read_mean r.messages r.retries r.hedges
        (if r.audit_clean then "clean" else "DIRTY"))
    (Store.Experiments.retry_policy_table ());
  Fmt.pr
    "@.shape: fire-once pays the full operation timeout whenever one message \
     of the chosen quorum is lost; bounded retries resend to the unheard \
     members and recover most of the lost availability for a modest message \
     overhead, and hedging adds the unchosen replicas as a late fallback — \
     the audit stays clean throughout, since retries and hedges never weaken \
     quorum intersection.@."

(* ---------- shard-balance ablation ---------- *)

let shards_table ?(seeds = 1) () =
  header
    (if seeds = 1 then
       "Shard-balance ablation: Zipf s=1.1 keys over 1/2/4 range shards \
        (majority-3 per shard, 80% reads), with the hot shard killed at t=500"
     else
       Fmt.str
         "Shard-balance ablation: Zipf s=1.1 keys over 1/2/4 range shards \
          (majority-3 per shard, 80%% reads), with the hot shard killed at \
          t=500 — availability cells min/mean over %d seeds"
         seeds);
  Fmt.pr "%-8s %-10s %-10s %-11s %-13s %-19s %-19s@." "shards" "replicas"
    "messages" "imbalance" "shard spread" "availability" "kill avail";
  List.iter
    (fun (r : Store.Experiments.shard_row) ->
      let cell min mean =
        if seeds = 1 then Fmt.str "%.3f" mean
        else Fmt.str "%.3f/%.3f" min mean
      in
      Fmt.pr "%-8d %-10d %-10d %-11.2f %-13.2f %-19s %-19s@."
        r.Store.Experiments.n_shards r.total_replicas r.messages
        r.replica_imbalance r.shard_spread
        (cell r.min_availability r.availability)
        (cell r.min_kill_availability r.kill_availability))
    (Store.Experiments.shard_table ~seeds ());
  Fmt.pr
    "@.shape: per-key quorums make sharding correctness-free capacity — \
     messages stay flat while replicas multiply; range sharding concentrates \
     the Zipf head in shard 0 (spread >> 1), and killing that shard is a \
     total outage at 1 shard but leaves the other shards' keys serving as \
     the shard count grows.@."

(* ---------- multi-key batching ablation ---------- *)

let batch_table () =
  header
    "Multi-key batching ablation: burst-8 clients, batched vs unbatched \
     (majority-5, broadcast), uniform and Zipf-skewed keys";
  Fmt.pr "%-15s %-15s %-10s %-10s %-10s %-10s %-6s %-8s %-7s@." "workload"
    "mode" "messages" "payloads" "read p95" "write p95" "ok" "failed" "audit";
  List.iter
    (fun (r : Store.Experiments.batch_row) ->
      Fmt.pr "%-15s %-15s %-10d %-10d %-10.2f %-10.2f %-6d %-8d %-7s@."
        r.Store.Experiments.zipf_label r.mode r.b_messages r.b_payloads
        r.read_p95 r.write_p95 r.b_ok_ops r.b_failed_ops
        (if r.b_audit_clean then "clean" else "DIRTY"))
    (Store.Experiments.batching_table ());
  Fmt.pr
    "@.shape: a burst of distinct keys shares one frame per replica per \
     window, so wire messages collapse (payloads count the logical work and \
     stay equal) at the cost of up to one window of queue delay per request \
     in the p95 columns; the audit is untouched — batching changes framing, \
     never quorum membership.@."

(* ---------- replica-side io pipeline ablation ---------- *)

let io_table_check () =
  header
    "Replica io-pipeline ablation: per-install fsync vs group commit \
     (majority-3, burst-8 Zipf, 30% reads, write_cost=0.05 fsync_cost=5.0)";
  Fmt.pr "%-15s %-10s %-8s %-14s %-11s %-10s %-6s %-8s %-7s@." "mode"
    "installs" "fsyncs" "fsyncs/install" "write mean" "write p95" "ok"
    "failed" "audit";
  let rows = Store.Experiments.io_table () in
  List.iter
    (fun (r : Store.Experiments.io_row) ->
      Fmt.pr "%-15s %-10d %-8d %-14.3f %-11.2f %-10.2f %-6d %-8d %-7s@."
        r.Store.Experiments.io_mode r.io_installs r.io_fsyncs
        r.io_fsyncs_per_install r.io_write_mean r.io_write_p95 r.io_ok_ops
        r.io_failed_ops
        (if r.io_audit_clean then "clean" else "DIRTY")) rows;
  let fpi mode =
    match
      List.find_opt (fun r -> r.Store.Experiments.io_mode = mode) rows
    with
    | Some r -> r.Store.Experiments.io_fsyncs_per_install
    | None -> nan
  in
  let amortization = fpi "naive-fsync" /. fpi "group-commit" in
  let audits_clean =
    List.for_all (fun r -> r.Store.Experiments.io_audit_clean) rows
  in
  Fmt.pr
    "@.shape: the device serializes, so per-install fsyncs queue behind each \
     other and every burst pays its full length in fsync latency; group \
     commit drains whatever accumulated behind the in-flight fsync as one \
     group, amortizing the dominant cost — acks still wait for durability, \
     so the audit is unchanged.@.";
  Fmt.pr "@.group-commit fsync amortization vs naive: %.2fx (gate: >= 2.0)@."
    amortization;
  amortization >= 2.0 && audits_clean

let io_table_cmd () =
  if not (io_table_check ()) then (
    Fmt.epr "io ablation gate FAILED: amortization < 2.0x or dirty audit@.";
    exit 1)

(* ---------- adaptive batching-window ablation ---------- *)

let window_table_cmd () =
  header
    "Adaptive batching-window ablation: static windows vs AIMD control \
     (majority-3, burst-8 Zipf vs uniform low-rate)";
  Fmt.pr "%-18s %-15s %-10s %-10s %-10s %-6s %-8s %-7s@." "workload" "mode"
    "messages" "payloads" "op mean" "ok" "failed" "audit";
  List.iter
    (fun (r : Store.Experiments.window_row) ->
      Fmt.pr "%-18s %-15s %-10d %-10d %-10.2f %-6d %-8d %-7s@."
        r.Store.Experiments.w_workload r.w_mode r.w_messages r.w_payloads
        r.w_op_mean r.w_ok_ops r.w_failed_ops
        (if r.w_audit_clean then "clean" else "DIRTY"))
    (Store.Experiments.window_table ());
  Fmt.pr
    "@.shape: on bursts, wide static windows buy coalescing with queue \
     delay; the AIMD controller widens only while flushes keep finding \
     full per-replica frames, matching the best static message economy, \
     and decays to zero on the uniform low-rate workload — where it adds \
     no window latency at all (compare its op mean with unbatched).@."

(* ---------- latency-attribution ablation ---------- *)

let attribution_table_cmd () =
  header
    "Latency attribution: per-phase decomposition of mean op latency, loss x \
     burst (majority-3 x 2 shards, retries, batch window 1.0, storage \
     0.05/2.0)";
  Fmt.pr "%-18s %-6s %-9s" "condition" "ops" "wall";
  List.iter
    (fun p -> Fmt.pr " %8s" (Obs.Attribution.phase_label p))
    Obs.Attribution.phases;
  Fmt.pr " %-7s@." "audit";
  List.iter
    (fun (r : Store.Experiments.attr_row) ->
      Fmt.pr "%-18s %-6d %-9.3f" r.Store.Experiments.a_label r.a_ops
        r.a_wall_mean;
      List.iter (fun (_, d) -> Fmt.pr " %8.3f" d) r.a_phase_means;
      Fmt.pr " %-7s@." (if r.a_audit_clean then "clean" else "DIRTY"))
    (Store.Experiments.attribution_table ());
  Fmt.pr
    "@.shape: the phases sum to the wall mean by construction, so each knob's \
     cost lands in its own column — loss shows up as backoff gaps (and \
     timeout-inflated net), bursts as batch-window waits plus the \
     group-commit fsync share; what remains in net is genuine flight and \
     scheduling, the part no client-side knob can recover.@."

(* ---------- optimal vote assignments ---------- *)

let optimal_table () =
  header
    "Optimal vote assignments (n = 5): best (votes, r, w) by availability, \
     per site availability p and read fraction f";
  Fmt.pr "%-6s %-6s %-14s %-4s %-4s %-10s %-10s %-10s@." "p" "f" "votes" "r"
    "w" "score" "rowa" "majority";
  List.iter
    (fun (r : Store.Experiments.optimum_row) ->
      Fmt.pr "%-6.2f %-6.2f %-14s %-4d %-4d %-10.5f %-10.5f %-10.5f@."
        r.Store.Experiments.p r.read_fraction
        (String.concat "," (List.map string_of_int r.votes))
        r.r r.w r.score r.rowa_score r.majority_score)
    (Store.Experiments.optimal_configurations ());
  Fmt.pr
    "@.shape: the optimum always weakly dominates both classical extremes; \
     at moderate p the skewed workloads are won by ASYMMETRIC quorums \
     (e.g. 2-of-5 reads / 4-of-5 writes), not by read-one/write-all — \
     whose write side collapses; rowa's real advantage is latency, not \
     availability.@."

(* ---------- exhaustive verification ---------- *)

let exhaustive_table () =
  header
    "EX: exhaustive verification — every schedule of small instances checked \
     (Lemmas 5-8; recon invariants)";
  Fmt.pr "%-44s %-11s %-11s %-10s %-9s@." "instance" "schedules" "prefixes"
    "exhausted" "verdict";
  let w v seq =
    Serial.User_txn.Access_child
      (Ioa.Txn.Access { obj = "x"; kind = Ioa.Txn.Write; data = Ioa.Value.Int v; seq })
  in
  let r seq =
    Serial.User_txn.Access_child
      (Ioa.Txn.Access { obj = "x"; kind = Ioa.Txn.Read; data = Ioa.Value.Nil; seq })
  in
  let quorum_instance name config_of dms ops include_aborts =
    let item =
      Quorum.Item.make ~name:"x" ~dms ~config:(config_of dms)
        ~initial:(Ioa.Value.Int 0)
    in
    let d =
      {
        Quorum.Description.items = [ item ];
        raw_objects = [];
        root_script =
          {
            Serial.User_txn.children =
              [
                Serial.User_txn.Sub
                  ( "t",
                    {
                      Serial.User_txn.children = ops;
                      ordered = true;
                      eager = false;
                      returns = Serial.User_txn.return_all;
                    } );
              ];
            ordered = true;
            eager = false;
            returns = Serial.User_txn.return_nil;
          };
      }
    in
    let s =
      Quorum.Explore.check_description ~budget:5_000_000 ~include_aborts d
    in
    Fmt.pr "%-44s %-11d %-11d %-10b %-9s@." name s.Quorum.Explore.schedules
      s.prefixes s.exhausted
      (if s.violation = None then "OK" else "VIOLATION")
  in
  quorum_instance "2-DM rowa, write+read, no aborts" Quorum.Config.rowa
    [ "d0"; "d1" ] [ w 1 0; r 1 ] false;
  quorum_instance "2-DM majority, write+read, no aborts" Quorum.Config.majority
    [ "d0"; "d1" ] [ w 1 0; r 1 ] false;
  quorum_instance "2-DM rowa, write, WITH aborts" Quorum.Config.rowa
    [ "d0"; "d1" ] [ w 1 0 ] true;
  (* recon instance: config migrates {d0} -> {d1} around one write *)
  let tiny_item =
    Recon.Item.make ~name:"x" ~dms:[ "d0"; "d1" ] ~initial:(Ioa.Value.Int 0)
      ~initial_config:
        (Quorum.Config.make ~read_quorums:[ [ "d0" ] ] ~write_quorums:[ [ "d0" ] ])
      ~candidates:
        [ Quorum.Config.make ~read_quorums:[ [ "d1" ] ] ~write_quorums:[ [ "d1" ] ] ]
  in
  let rd =
    {
      Recon.Description.items = [ tiny_item ];
      raw_objects = [];
      root_script =
        {
          Serial.User_txn.children = [ w 1 0 ];
          ordered = true;
          eager = false;
          returns = Serial.User_txn.return_nil;
        };
      max_recons_per_txn = 1;
    }
  in
  let s = Recon.Explore.check_description ~budget:5_000_000 rd in
  Fmt.pr "%-44s %-11d %-11d %-10b %-9s@."
    "recon {d0}->{d1}, write + spy recon" s.Quorum.Explore.schedules s.prefixes
    s.exhausted
    (if s.violation = None then "OK" else "VIOLATION")

(* ---------- read repair ---------- *)

let repair_table () =
  header
    "Read repair (anti-entropy): replica staleness after a failure-heavy \
     write phase, then a read-only phase (majority, n = 5)";
  Fmt.pr "%-18s %-16s %-16s %-10s@." "mode" "staleness(mid)" "staleness(end)"
    "repairs";
  List.iter
    (fun (r : Store.Experiments.repair_row) ->
      Fmt.pr "%-18s %-16.3f %-16.3f %-10d@." r.Store.Experiments.mode
        r.staleness_mid r.staleness_end r.repairs_sent)
    (Store.Experiments.read_repair_experiment ())

(* ---------- coterie quality ---------- *)

let coterie_table () =
  header
    "Coterie analysis (Barbara & Garcia-Molina): write sides of the standard \
     configurations over 5 DMs";
  let dms = List.init 5 (fun i -> Fmt.str "d%d" i) in
  Fmt.pr "%-22s %-18s %-14s %-30s@." "configuration" "write side" "non-dominated"
    "domination witness";
  List.iter
    (fun (name, c) ->
      match Quorum.Coterie.of_write_side c with
      | None -> Fmt.pr "%-22s %-18s %-14s %-30s@." name "not a coterie" "-" "-"
      | Some coterie ->
          let nd = Quorum.Coterie.non_dominated coterie in
          let witness =
            match Quorum.Coterie.domination_witness coterie with
            | Some w -> String.concat "," w
            | None -> "-"
          in
          Fmt.pr "%-22s %-18s %-14b %-30s@." name "coterie" nd witness)
    [
      ("majority", Quorum.Config.majority dms);
      ("read-one/write-all", Quorum.Config.rowa dms);
      ("read-all/write-one", Quorum.Config.raow dms);
      ( "grid 1x5-ish",
        Quorum.Config.weighted
          ~votes:(List.mapi (fun i d -> (d, if i = 0 then 2 else 1)) dms)
          ~read_threshold:2 ~write_threshold:5 );
    ];
  Fmt.pr
    "@.shape: majority is non-dominated (optimal in the coterie sense); \
     write-all is dominated (any single site witnesses it) — the price of \
     read-one reads.@."

(* ---------- E14 virtual partitions ---------- *)

let vp_table () =
  header
    "E14 (extension): virtual partitions (El Abbadi-Toueg) — partition \
     timeline and read-one fast path";
  let c = Vp.Experiments.compare () in
  Fmt.pr "%-18s %-8s %-8s %-10s@." "phase" "ok" "failed" "read mean";
  List.iter
    (fun (r : Vp.Experiments.phase_row) ->
      Fmt.pr "%-18s %-8d %-8d %-10.2f@." r.Vp.Experiments.phase r.ok r.failed
        r.read_mean)
    c.Vp.Experiments.phases;
  Fmt.pr
    "@.read-one in healthy view: %.2f vs static majority quorum read: %.2f@."
    c.vp_read_mean c.majority_read_mean;
  Fmt.pr "stale reads: %d; minority-side view refused: %b@." c.stale_reads
    c.minority_view_refused

(* ---------- cross-shard commit ablation: 2PC vs Paxos Commit ---------- *)

(* the pinned coordinator-kill schedule of test/test_txn.ml: two
   client-coordinators die inside the commit window and recover only
   near the end of the run, after which the network heals *)
let txn_kill_script =
  Harness.Script.
    [
      At (30.0, Crash "c0");
      At (55.0, Crash "c1");
      At (700.0, Recover "c0");
      At (700.0, Recover "c1");
      At (701.0, Heal);
    ]

let txn_run mode seed =
  Store.Cluster.run
    {
      Store.Cluster.default_params with
      n_replicas = 3;
      n_clients = 3;
      n_shards = 3;
      seed;
      script = txn_kill_script;
      workload =
        { Store.Workload.default_spec with n_keys = 24; think_time = 4.0 };
      txns =
        Some
          {
            Store.Cluster.default_txn_spec with
            commit_mode = mode;
            txns_per_client = 12;
          };
    }

let txn_table_check ?(seeds = 8) () =
  header
    (Fmt.str
       "TXN: coordinator-kill ablation — blocking 2PC vs Paxos Commit \
        (3 shards x majority-3, 3 clients, 2 coordinators killed in the \
        commit window, healed at t=701; %d seeds per mode)"
       seeds);
  Fmt.pr "%-8s %-6s %-8s %-8s %-9s %-9s %-10s %-7s %-9s@." "mode" "seed"
    "acked" "failed" "decided" "blocked" "lat mean" "audit" "liveness";
  let totals =
    List.map
      (fun mode ->
        let blocked = ref 0 and dirty = ref 0 and dead = ref 0 in
        let acked = ref 0 in
        for seed = 1 to seeds do
          let r = txn_run mode seed in
          let live =
            Harness.Check.liveness_after_heal ~script:txn_kill_script
              ~completions:r.Store.Cluster.completions
            = Ok ()
          in
          blocked := !blocked + List.length r.Store.Cluster.blocked_txns;
          dirty := !dirty + List.length r.Store.Cluster.audit_violations;
          acked := !acked + r.Store.Cluster.ok_txns;
          if not live then incr dead;
          Fmt.pr "%-8s %-6d %-8d %-8d %-9d %-9d %-10.2f %-7s %-9s@."
            (Store.Txn.mode_label mode)
            seed r.Store.Cluster.ok_txns r.Store.Cluster.failed_txns
            r.Store.Cluster.decided_txns
            (List.length r.Store.Cluster.blocked_txns)
            r.Store.Cluster.txn_latency.Sim.Stats.mean
            (if r.Store.Cluster.audit_violations = [] then "clean"
             else "DIRTY")
            (if live then "live" else "STUCK")
        done;
        (mode, !blocked, !dirty, !dead, !acked))
      [ `Two_phase; `Paxos ]
  in
  Fmt.pr "@.";
  List.iter
    (fun (mode, blocked, dirty, dead, acked) ->
      Fmt.pr
        "%-8s TOTAL: %d acked, %d blocked txn(s), %d audit violation(s), %d \
         stuck run(s)@."
        (Store.Txn.mode_label mode)
        acked blocked dirty dead)
    totals;
  let find m =
    List.find (fun (mode, _, _, _, _) -> mode = m) totals
  in
  let _, b2, d2, _, _ = find `Two_phase in
  let _, bp, dp, deadp, _ = find `Paxos in
  Fmt.pr
    "@.shape: the kill lands between prepare and decision, so 2PC \
     participants stay prepared-but-undecided — locked and in doubt — until \
     the coordinator returns (here: never inside the measurement window); \
     Paxos Commit lets the prepared replicas elect a recovery leader over \
     the same decision register and finish the commit, so nothing stays \
     blocked once the partition heals, at no cost to the audit.@.";
  Fmt.pr "@.gate: 2pc blocked > 0: %b; paxos blocked = 0: %b; audits clean: \
          %b; paxos live after heal: %b@."
    (b2 > 0) (bp = 0)
    (d2 = 0 && dp = 0)
    (deadp = 0);
  b2 > 0 && bp = 0 && d2 = 0 && dp = 0 && deadp = 0

let txn_table_cmd seeds =
  if not (txn_table_check ~seeds ()) then (
    Fmt.epr
      "txn ablation gate FAILED: expected 2pc blocked > 0, paxos blocked = \
       0, clean audits, paxos liveness after heal@.";
    exit 1)

(* ---------- Workload-aware quorum tuning ---------- *)

let tune_table_check ?(seeds = 3) () =
  header
    (Fmt.str
       "TUNE: workload-aware quorum optimizer + queue-aware read steering \
        vs static majority (5 replicas, 4 clients, quorum targeting, \
        fire-once; %d seeds per cell)"
       seeds);
  let rows = Store.Experiments.tune_table ~seeds () in
  Fmt.pr "%-8s %-8s %-16s %-18s %-4s %-6s %-7s %-8s %-9s %-9s %-6s@." "env"
    "mix" "mode" "strategy" "sw" "ok" "failed" "thruput" "read-mean" "read-p99"
    "audit";
  List.iter
    (fun (r : Store.Experiments.tune_row) ->
      Fmt.pr "%-8s %-8s %-16s %-18s %-4d %-6d %-7d %-8.4f %-9.2f %-9.2f %-6s@."
        r.Store.Experiments.t_env r.t_mix r.t_mode r.t_strategy r.t_switches
        r.t_ok_ops r.t_failed_ops r.t_throughput r.t_read_mean r.t_read_p99
        (if r.t_audit_clean then "clean" else "DIRTY"))
    rows;
  let find env mix mode =
    List.find
      (fun (r : Store.Experiments.tune_row) ->
        String.equal r.Store.Experiments.t_env env
        && String.equal r.t_mix mix
        && String.equal r.t_mode mode)
      rows
  in
  let maj = find "uniform" "90/10" "majority" in
  let opt = find "uniform" "90/10" "optimized" in
  let smaj = find "slow-r4" "90/10" "majority" in
  let ssteer = find "slow-r4" "90/10" "majority+steer" in
  let audits =
    List.for_all (fun (r : Store.Experiments.tune_row) -> r.t_audit_clean) rows
  in
  let opt_win =
    Float.compare opt.Store.Experiments.t_throughput
      maj.Store.Experiments.t_throughput
    > 0
    || Float.compare opt.Store.Experiments.t_read_p99
         maj.Store.Experiments.t_read_p99
       < 0
  in
  let adopted = opt.Store.Experiments.t_switches > 0 in
  let steer_win =
    Float.compare ssteer.Store.Experiments.t_read_p99
      smaj.Store.Experiments.t_read_p99
    < 0
    || Float.compare ssteer.Store.Experiments.t_read_mean
         smaj.Store.Experiments.t_read_mean
       < 0
  in
  Fmt.pr
    "@.shape: on the skewed mix the optimizer migrates the shard off \
     majority onto a small-read-quorum strategy (writes pay a larger \
     install quorum, but at 90/10 the read side dominates both load and \
     latency); with a slow replica, steering routes reads around it using \
     the per-replica latency EWMA + live queue depths, while random quorum \
     picks keep paying its tax.  Every switch runs the joint-strategy \
     transition + key migration, so the audits stay clean throughout.@.";
  Fmt.pr
    "@.gate: optimizer adopted a strategy: %b; optimized beats majority \
     (throughput or read p99, 90/10): %b; steering beats random under \
     slow-r4 (read p99 or mean): %b; audits clean: %b@."
    adopted opt_win steer_win audits;
  adopted && opt_win && steer_win && audits

let tune_table_cmd seeds =
  if not (tune_table_check ~seeds ()) then (
    Fmt.epr
      "tune ablation gate FAILED: expected an adopted strategy, an \
       optimizer win vs majority on the skewed mix, a steering win with a \
       slow replica, and clean audits@.";
    exit 1)

(* ---------- E11 Theorem 11 ---------- *)

let theorem11_table seeds =
  header
    (Fmt.str
       "E11: one-copy serializability of concurrent replicated runs (%d seeds \
        per mode)"
       seeds);
  Fmt.pr "%-8s %-10s %-10s %-12s %-12s %-10s@." "mode" "pass" "commits"
    "aborted" "peak-conc" "verdict";
  List.iter
    (fun (name, mode, expect_pass) ->
      let pass = ref 0 and commits = ref 0 and aborted = ref 0 and peak = ref 0 in
      for seed = 1 to seeds do
        match Cc.Harness.run_and_check ~mode ~seed () with
        | Ok r ->
            incr pass;
            commits := !commits + r.Cc.Harness.committed_tops;
            aborted := !aborted + r.aborted_nodes;
            peak := max !peak r.peak_concurrency
        | Error _ -> ()
      done;
      let verdict =
        if expect_pass then (if !pass = seeds then "OK" else "FAIL")
        else if !pass < seeds then "violations found (expected)"
        else "UNEXPECTEDLY CLEAN"
      in
      Fmt.pr "%-8s %3d/%-6d %-10d %-12d %-12d %-10s@." name !pass seeds !commits
        !aborted !peak verdict)
    [ ("2PL", `TwoPL, true); ("MVTO", `Mvto, true); ("none", `NoCC, false) ]

let all seeds =
  formal_table seeds;
  theorem11_table (min seeds 30);
  availability_table ();
  latency_table ();
  crossover_table ();
  gifford_table ();
  reconfig_table ();
  adt_table ();
  vp_table ();
  coterie_table ();
  repair_table ();
  optimal_table ();
  load_table ();
  retry_table ();
  shards_table ();
  batch_table ();
  attribution_table_cmd ();
  ignore (io_table_check ());
  window_table_cmd ();
  ignore (txn_table_check ~seeds:4 ());
  ignore (tune_table_check ~seeds:2 ());
  exhaustive_table ()

(* ---------- CLI ---------- *)

open Cmdliner

let seeds =
  let doc = "Number of random-system seeds for the formal checks." in
  Arg.(value & opt int 100 & info [ "seeds" ] ~doc)

let cmd_of name f doc =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let () =
  let default = Term.(const all $ seeds) in
  let cmds =
    [
      Cmd.v (Cmd.info "e5" ~doc:"Formal checks (Lemmas 5-8, Thm 10, recon)")
        Term.(const formal_table $ seeds);
      cmd_of "availability" availability_table "Q1 availability sweep";
      cmd_of "latency" latency_table "Q2 latency by strategy";
      cmd_of "crossover" crossover_table "Q3 rowa/majority crossover";
      cmd_of "gifford" gifford_table "G1-G3 weighted-voting examples";
      cmd_of "reconfig" reconfig_table "Q4 reconfiguration experiment";
      cmd_of "adt" adt_table "E13 ADT general quorum consensus (extension)";
      cmd_of "vp" vp_table "E14 virtual partitions (extension)";
      cmd_of "coterie" coterie_table "Coterie quality analysis";
      cmd_of "repair" repair_table "Read-repair anti-entropy experiment";
      cmd_of "exhaustive" exhaustive_table "EX exhaustive verification";
      cmd_of "optimal" optimal_table "Optimal vote assignments";
      cmd_of "load" load_table "Broadcast vs targeted quorums (load/messages)";
      cmd_of "retry" retry_table "Retry/backoff/hedging policy ablation";
      Cmd.v
        (Cmd.info "shards" ~doc:"Shard-balance ablation (1/2/4 shards)")
        Term.(
          const (fun seeds -> shards_table ~seeds ())
          $ Arg.(
              value & opt int 1
              & info [ "seeds" ]
                  ~doc:
                    "Average the availability cells over $(docv) consecutive \
                     seeds, reporting min/mean per cell."));
      cmd_of "batch" batch_table "Multi-key batching ablation";
      cmd_of "attribution" attribution_table_cmd
        "Latency-attribution ablation (loss x burst phase decomposition)";
      cmd_of "io" io_table_cmd
        "Replica io-pipeline ablation (exits 1 if group commit amortizes \
         fsyncs < 2x vs naive, or any audit is dirty)";
      cmd_of "window" window_table_cmd "Adaptive batching-window ablation";
      Cmd.v
        (Cmd.info "txn"
           ~doc:
             "Cross-shard commit ablation: 2PC vs Paxos Commit under \
              coordinator kills (exits 1 unless 2PC blocks, Paxos Commit \
              does not, every audit is clean, and Paxos regains liveness \
              after the heal)")
        Term.(
          const txn_table_cmd
          $ Arg.(
              value & opt int 8
              & info [ "seeds" ] ~doc:"Seeds per commit mode."));
      Cmd.v
        (Cmd.info "tune"
           ~doc:
             "Workload-aware quorum tuning ablation: optimizer + read \
              steering vs static majority (exits 1 unless the optimizer \
              adopts a strategy and beats majority on the skewed mix, \
              steering beats random picks with a slow replica, and every \
              audit is clean)")
        Term.(
          const tune_table_cmd
          $ Arg.(
              value & opt int 3
              & info [ "seeds" ] ~doc:"Seeds averaged per cell."));
      Cmd.v (Cmd.info "theorem11" ~doc:"E11 serializability table")
        Term.(const theorem11_table $ Arg.(value & opt int 30 & info [ "seeds" ]));
    ]
  in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "tables" ~doc:"Regenerate the experiment tables")
          cmds))
