(* Dump, filter, and analyze execution traces from seeded simulated
   runs.

   The default command runs a small replicated-store cluster (sim +
   net + store layers) and, unless --no-ioa, a randomized system-B
   execution through the quorum harness (ioa layer) — all into ONE
   tracer — then exports it as JSONL or Chrome trace_event JSON (load
   the latter in chrome://tracing or https://ui.perfetto.dev).  With
   --input FILE it instead re-exports an existing JSONL trace —
   strictly: a corrupt file exits 2 with no partial dump.  --cat and
   --track restrict the export either way.

   Subcommands:
     attribution   run a causally-stamped cluster and decompose each
                   operation's wall latency into phases (self-checking:
                   the phases must sum to the wall latency)
     invariance    prove tracing is observation-only: seeded runs with
                   tracing off / on / causally stamped must produce
                   identical simulation digests

   Examples:
     trace_dump.exe --seed 7 -o trace.json
     trace_dump.exe --format jsonl --ops 50 | head
     trace_dump.exe --validate              # well-formedness smoke check
     trace_dump.exe --input trace.jsonl --cat store --format jsonl
     trace_dump.exe attribution --seed 42 --shards 4 --json
     trace_dump.exe invariance --seeds 42,7,101 *)

open Cmdliner

(* ---------- dump (the default command) ---------- *)

let run_dump seed replicas clients ops loss partitions capacity format out
    validate no_ioa with_metrics input cat track =
  let filtered events = Obs.Query.filter_events ?cat ?track events in
  let source =
    match input with
    | Some path -> (
        (* strict import: any unreadable or corrupt line refuses the
           whole dump — partial traces mislead more than they help *)
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error e -> Error (Fmt.str "cannot read %s: %s" path e)
        | contents -> (
            match Obs.Export.parse_jsonl contents with
            | Ok events -> Ok (`Events (filtered events))
            | Error e -> Error (Fmt.str "corrupt trace %s: %s" path e)))
    | None ->
        let tracer = Obs.Trace.create ~capacity () in
        (* the store/net/sim layers: a seeded cluster run *)
        let results =
          Store.Cluster.run
            {
              Store.Cluster.default_params with
              n_replicas = replicas;
              n_clients = clients;
              workload =
                { Store.Workload.default_spec with ops_per_client = ops };
              loss;
              partitions;
              seed;
              tracer = Some tracer;
            }
        in
        (* the ioa layer: a short system-B action trail through the
           harness *)
        (if not no_ioa then
           match Quorum.Harness.run_and_check ~max_steps:400 ~tracer ~seed () with
           | Ok _ -> ()
           | Error e -> Fmt.epr "warning: harness check failed: %s@." e);
        if with_metrics then
          Fmt.epr "%s" (Obs.Metrics.dump results.Store.Cluster.metrics);
        if cat = None && track = None then Ok (`Tracer tracer)
        else Ok (`Events (filtered (Obs.Trace.events tracer)))
  in
  match source with
  | Error e ->
      Fmt.epr "trace_dump: %s@." e;
      2
  | Ok source -> (
      let events =
        match source with
        | `Tracer tr -> Obs.Trace.events tr
        | `Events evs -> evs
      in
      let contents =
        match (format, source) with
        (* the unfiltered live-tracer paths keep their historical
           byte-for-byte exports *)
        | `Chrome, `Tracer tr -> Obs.Export.chrome tr
        | `Jsonl, `Tracer tr -> Obs.Export.jsonl tr
        | `Chrome, `Events evs -> Obs.Export.chrome_of_events evs
        | `Jsonl, `Events evs -> Obs.Export.jsonl_of_events evs
      in
      let validation =
        if not validate then Ok ()
        else
          match format with
          | `Chrome -> Obs.Export.check_chrome contents
          | `Jsonl -> (
              match Obs.Export.parse_jsonl contents with
              | Error e -> Error (Fmt.str "bad JSONL: %s" e)
              | Ok _ -> Obs.Query.check_balanced events)
      in
      match
        match out with
        | Some path ->
            let oc = open_out path in
            output_string oc contents;
            close_out oc;
            Fmt.epr "wrote %d events to %s@." (List.length events) path
        | None -> print_string contents
      with
      | exception Sys_error e ->
          Fmt.epr "cannot write trace: %s@." e;
          1
      | () -> (
          match validation with
          | Ok () ->
              if validate then
                Fmt.epr "trace OK: valid JSON, spans balanced@.";
              0
          | Error e ->
              Fmt.epr "trace INVALID: %s@." e;
              1))

let seed =
  Arg.(value & opt int 7 & info [ "s"; "seed" ] ~doc:"Simulation seed.")

let replicas =
  Arg.(value & opt int 5 & info [ "replicas" ] ~doc:"Number of replicas.")

let clients =
  Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Number of clients.")

let ops =
  Arg.(value & opt int 20 & info [ "ops" ] ~doc:"Operations per client.")

let loss =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"Message loss rate.")

let partitions =
  Arg.(
    value
    & opt (some float) None
    & info [ "partitions" ] ~doc:"Mean time between nemesis partitions.")

let capacity =
  Arg.(
    value & opt int 262144
    & info [ "capacity" ] ~doc:"Trace ring-buffer capacity (events).")

let format =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
    & info [ "format" ] ~doc:"Output format: $(b,chrome) or $(b,jsonl).")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE (default stdout).")

let validate =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:"Check the export is valid JSON with balanced span begin/ends; \
              exit 1 otherwise.")

let no_ioa =
  Arg.(
    value & flag
    & info [ "no-ioa" ] ~doc:"Skip the system-B (ioa layer) run.")

let with_metrics =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Also dump the metrics registry to stderr.")

let input =
  Arg.(
    value
    & opt (some string) None
    & info [ "input" ] ~docv:"FILE"
        ~doc:
          "Re-export an existing JSONL trace instead of running a \
           simulation.  The import is strict: an unreadable or corrupt \
           file exits 2 without emitting a partial dump.")

let cat_filter =
  Arg.(
    value
    & opt (some string) None
    & info [ "cat" ] ~docv:"CAT"
        ~doc:"Keep only events of this category (e.g. $(b,store), $(b,ioa)).")

let track_filter =
  Arg.(
    value
    & opt (some string) None
    & info [ "track" ] ~docv:"TRACK"
        ~doc:"Keep only events on this track (a client, replica, or node).")

let dump_term =
  Term.(
    const run_dump $ seed $ replicas $ clients $ ops $ loss $ partitions
    $ capacity $ format $ out $ validate $ no_ioa $ with_metrics $ input
    $ cat_filter $ track_filter)

(* ---------- attribution ---------- *)

let run_attribution seed replicas clients ops loss shards burst batch_window
    storage_cost fsync_cost json out =
  let tracer = Obs.Trace.create ~capacity:262144 ~enabled:true () in
  let results =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        n_replicas = replicas;
        n_clients = clients;
        n_shards = shards;
        loss;
        seed;
        tracer = Some tracer;
        trace_ctx = true;
        batch_window;
        storage_cost;
        fsync_cost;
        policy =
          {
            Rpc.Policy.default with
            max_attempts = 3;
            attempt_timeout = 25.0;
            backoff = 2.0;
          };
        workload =
          {
            Store.Workload.default_spec with
            ops_per_client = ops;
            zipf_s = 1.1;
            burst;
          };
      }
  in
  let events = Obs.Trace.events tracer in
  let bs = Obs.Attribution.of_events events in
  (* self-check: the decomposition must be exact — every operation's
     phases sum to its wall latency *)
  let bad =
    List.filter
      (fun b ->
        let sum =
          List.fold_left (fun a (_, d) -> a +. d) 0.0 b.Obs.Attribution.by_phase
        in
        Float.abs (Obs.Attribution.wall b -. sum) > 1e-6)
      bs
  in
  let total_ops =
    results.Store.Cluster.ok_reads + results.Store.Cluster.ok_writes
    + results.Store.Cluster.failed_reads + results.Store.Cluster.failed_writes
  in
  if bs = [] then begin
    Fmt.epr "attribution: no stamped operations in the trace@.";
    1
  end
  else if bad <> [] then begin
    List.iter
      (fun b ->
        Fmt.epr "attribution: phases of %s do not sum to its wall latency@."
          b.Obs.Attribution.op)
      bad;
    1
  end
  else begin
    let emit contents =
      match out with
      | Some path ->
          let oc = open_out path in
          output_string oc contents;
          close_out oc
      | None -> print_string contents
    in
    if json then
      emit (Obs.Json.to_string (Obs.Attribution.report_to_json bs) ^ "\n")
    else begin
      let buf = Buffer.create 1024 in
      let add fmt = Fmt.kstr (Buffer.add_string buf) fmt in
      add "attributed %d of %d operations@\n" (List.length bs) total_ops;
      add "%-10s %6s %9s" "shard" "ops" "wall";
      List.iter
        (fun p -> add " %8s" (Obs.Attribution.phase_label p))
        Obs.Attribution.phases;
      add "@\n";
      List.iter
        (fun shard ->
          let mine =
            List.filter (fun b -> b.Obs.Attribution.shard = shard) bs
          in
          let n = List.length mine in
          let wall_mean =
            List.fold_left (fun a b -> a +. Obs.Attribution.wall b) 0.0 mine
            /. float_of_int n
          in
          add "%-10s %6d %9.3f"
            (match shard with
            | Some s -> Fmt.str "s%d" s
            | None -> "-")
            n wall_mean;
          List.iter
            (fun (_, d) -> add " %8.3f" d)
            (Obs.Attribution.mean_by_phase mine);
          add "@\n")
        (Obs.Attribution.shards bs);
      emit (Buffer.contents buf)
    end;
    0
  end

let shards =
  Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Number of shards.")

let burst =
  Arg.(value & opt int 4 & info [ "burst" ] ~doc:"Operations per burst.")

let attr_batch_window =
  Arg.(
    value
    & opt (some float) (Some 1.0)
    & info [ "batch-window" ] ~doc:"Client batching window (time units).")

let storage_cost =
  Arg.(
    value & opt float 0.05
    & info [ "storage-cost" ] ~doc:"Per-write latency of replica storage.")

let fsync_cost =
  Arg.(
    value & opt float 2.0
    & info [ "fsync-cost" ] ~doc:"Per-fsync latency of replica storage.")

let attr_json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the machine-readable JSON report.")

let attr_ops =
  Arg.(value & opt int 40 & info [ "ops" ] ~doc:"Operations per client.")

let attribution_cmd =
  let doc =
    "decompose each operation's wall latency into causally-attributed phases"
  in
  Cmd.v
    (Cmd.info "attribution" ~doc)
    Term.(
      const run_attribution $ seed $ replicas $ clients $ attr_ops $ loss
      $ shards $ burst $ attr_batch_window $ storage_cost $ fsync_cost
      $ attr_json $ out)

(* ---------- invariance ---------- *)

let run_invariance seeds replicas clients ops loss shards burst batch_window
    storage_cost fsync_cost =
  let base seed =
    {
      Store.Cluster.default_params with
      n_replicas = replicas;
      n_clients = clients;
      n_shards = shards;
      loss;
      seed;
      batch_window;
      storage_cost;
      fsync_cost;
      workload =
        { Store.Workload.default_spec with ops_per_client = ops; burst };
    }
  in
  let digest p = Store.Cluster.digest (Store.Cluster.run p) in
  let failures = ref 0 in
  List.iter
    (fun seed ->
      let p = base seed in
      let off = digest { p with Store.Cluster.trace_capacity = 0 } in
      let on = digest { p with Store.Cluster.trace_capacity = 262144 } in
      let ctx =
        digest
          {
            p with
            Store.Cluster.trace_capacity = 262144;
            Store.Cluster.trace_ctx = true;
          }
      in
      let ok = String.equal off on && String.equal on ctx in
      if not ok then incr failures;
      Fmt.pr "seed %d: off=%s on=%s ctx=%s %s@." seed off on ctx
        (if ok then "OK" else "MISMATCH"))
    seeds;
  if !failures = 0 then begin
    Fmt.pr "invariance OK: tracing changes no simulation outcome@.";
    0
  end
  else begin
    Fmt.epr "invariance FAILED for %d seed(s)@." !failures;
    1
  end

let seeds =
  Arg.(
    value
    & opt (list int) [ 42; 7; 101 ]
    & info [ "seeds" ] ~doc:"Comma-separated simulation seeds.")

let invariance_cmd =
  let doc =
    "check that enabling tracing or causal stamping changes no simulation \
     outcome (digest equality against tracing-off at the same seed)"
  in
  Cmd.v
    (Cmd.info "invariance" ~doc)
    Term.(
      const run_invariance $ seeds $ replicas $ clients $ attr_ops $ loss
      $ shards $ burst $ attr_batch_window $ storage_cost $ fsync_cost)

(* ---------- entry ---------- *)

let cmd =
  let doc = "dump, filter, and analyze simulation traces" in
  Cmd.group ~default:dump_term
    (Cmd.info "trace_dump" ~doc)
    [
      Cmd.v (Cmd.info "dump" ~doc:"dump a simulation trace") dump_term;
      attribution_cmd;
      invariance_cmd;
    ]

let () = exit (Cmd.eval' cmd)
