(* Dump an execution trace from a seeded simulated run.

   Runs a small replicated-store cluster (sim + net + store layers)
   and, unless --no-ioa, a randomized system-B execution through the
   quorum harness (ioa layer) — all into ONE tracer — then exports it
   as JSONL or Chrome trace_event JSON (load the latter in
   chrome://tracing or https://ui.perfetto.dev).

   Examples:
     trace_dump.exe --seed 7 -o trace.json
     trace_dump.exe --format jsonl --ops 50 | head
     trace_dump.exe --validate          # well-formedness smoke check *)

open Cmdliner

let run_dump seed replicas clients ops loss partitions capacity format out
    validate no_ioa with_metrics =
  let tracer = Obs.Trace.create ~capacity () in
  (* the store/net/sim layers: a seeded cluster run *)
  let results =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        n_replicas = replicas;
        n_clients = clients;
        workload =
          { Store.Workload.default_spec with ops_per_client = ops };
        loss;
        partitions;
        seed;
        tracer = Some tracer;
      }
  in
  (* the ioa layer: a short system-B action trail through the harness *)
  (if not no_ioa then
     match Quorum.Harness.run_and_check ~max_steps:400 ~tracer ~seed () with
     | Ok _ -> ()
     | Error e -> Fmt.epr "warning: harness check failed: %s@." e);
  if with_metrics then
    Fmt.epr "%s" (Obs.Metrics.dump results.Store.Cluster.metrics);
  let contents =
    match format with
    | `Chrome -> Obs.Export.chrome tracer
    | `Jsonl -> Obs.Export.jsonl tracer
  in
  let validation =
    if not validate then Ok ()
    else
      match format with
      | `Chrome -> Obs.Export.check_chrome contents
      | `Jsonl -> (
          (* every line parses, and spans balance *)
          let lines =
            List.filter (fun l -> String.length l > 0)
              (String.split_on_char '\n' contents)
          in
          let bad =
            List.find_map
              (fun l ->
                match Obs.Json.parse l with
                | Ok _ -> None
                | Error e -> Some (Fmt.str "bad JSONL line: %s" e))
              lines
          in
          match bad with
          | Some e -> Error e
          | None -> Obs.Query.check_balanced (Obs.Trace.events tracer))
  in
  match
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Fmt.epr "wrote %d events (%d overwritten) to %s@."
          (Obs.Trace.length tracer)
          (Obs.Trace.overwritten tracer)
          path
    | None -> print_string contents
  with
  | exception Sys_error e ->
      Fmt.epr "cannot write trace: %s@." e;
      1
  | () -> (
      match validation with
      | Ok () ->
          if validate then Fmt.epr "trace OK: valid JSON, spans balanced@.";
          0
      | Error e ->
          Fmt.epr "trace INVALID: %s@." e;
          1)

let seed =
  Arg.(value & opt int 7 & info [ "s"; "seed" ] ~doc:"Simulation seed.")

let replicas =
  Arg.(value & opt int 5 & info [ "replicas" ] ~doc:"Number of replicas.")

let clients =
  Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Number of clients.")

let ops =
  Arg.(value & opt int 20 & info [ "ops" ] ~doc:"Operations per client.")

let loss =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"Message loss rate.")

let partitions =
  Arg.(
    value
    & opt (some float) None
    & info [ "partitions" ] ~doc:"Mean time between nemesis partitions.")

let capacity =
  Arg.(
    value & opt int 262144
    & info [ "capacity" ] ~doc:"Trace ring-buffer capacity (events).")

let format =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
    & info [ "format" ] ~doc:"Output format: $(b,chrome) or $(b,jsonl).")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE (default stdout).")

let validate =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:"Check the export is valid JSON with balanced span begin/ends; \
              exit 1 otherwise.")

let no_ioa =
  Arg.(
    value & flag
    & info [ "no-ioa" ] ~doc:"Skip the system-B (ioa layer) run.")

let with_metrics =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Also dump the metrics registry to stderr.")

let cmd =
  let doc = "dump a simulation trace (Chrome trace_event or JSONL)" in
  Cmd.v
    (Cmd.info "trace_dump" ~doc)
    Term.(
      const run_dump $ seed $ replicas $ clients $ ops $ loss $ partitions
      $ capacity $ format $ out $ validate $ no_ioa $ with_metrics)

let () = exit (Cmd.eval' cmd)
