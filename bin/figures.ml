(* Regenerates the paper's two figures as ASCII transaction trees.

   Figure 1: a possible transaction tree for the replicated serial
   system B — user transactions, transaction managers, accesses to the
   replicas of logical items x and y, and non-replica accesses a, b.

   Figure 2: the corresponding tree for the non-replicated system A:
   the TMs become accesses to single objects x and y, the replicas
   disappear, and everything else is unchanged — the identity mapping
   that powers the Theorem 10 simulation.

   The trees are not hard-coded drawings: we build the actual system
   description, instantiate both systems, drive system B, and render
   the transactions that exist, so the figure is a live artifact of
   the implementation. *)

open Ioa

(* the paper's Figure 1 shape: two user transactions; the first has a
   non-replica access [a], a read of x and a nested user transaction
   that writes y; the second has a write of x and a non-replica
   access [b] *)
let description =
  let item name dms =
    Quorum.Item.make ~name ~dms ~config:(Quorum.Config.majority dms)
      ~initial:(Value.Int 0)
  in
  let x = item "x" [ "x1"; "x2"; "x3" ] in
  let y = item "y" [ "y1"; "y2" ] in
  let read obj seq =
    Serial.User_txn.Access_child
      (Txn.Access { obj; kind = Txn.Read; data = Value.Nil; seq })
  in
  let write obj v seq =
    Serial.User_txn.Access_child
      (Txn.Access { obj; kind = Txn.Write; data = Value.Int v; seq })
  in
  let script children =
    { Serial.User_txn.children; ordered = true;
      eager = false; returns = Serial.User_txn.return_all }
  in
  {
    Quorum.Description.items = [ x; y ];
    raw_objects = [ ("a", Value.Int 0); ("b", Value.Int 0) ];
    root_script =
      {
        Serial.User_txn.children =
          [
            Serial.User_txn.Sub
              ( "U1",
                script
                  [
                    read "a" 0;
                    read "x" 1;
                    Serial.User_txn.Sub ("U3", script [ write "y" 7 0 ]);
                  ] );
            Serial.User_txn.Sub ("U2", script [ write "x" 9 0; write "b" 5 1 ]);
          ];
        ordered = true;
        eager = false;
        returns = Serial.User_txn.return_nil;
      };
  }

(* Collect the transactions that actually took steps in a run, as a
   tree keyed by name. *)
let tree_of_schedule (sched : Schedule.t) =
  let names =
    List.sort_uniq Txn.compare (List.map Action.txn sched)
  in
  names

let label_b d (t : Txn.t) =
  match Quorum.Description.role_of d t with
  | Some Quorum.Description.User ->
      if Txn.is_root t then "T0 (root)" else "U  (user transaction)"
  | Some (Quorum.Description.Tm (i, Txn.Read)) ->
      Fmt.str "TM (read-TM for %s)" i.Quorum.Item.name
  | Some (Quorum.Description.Tm (i, Txn.Write)) ->
      Fmt.str "TM (write-TM for %s)" i.Quorum.Item.name
  | Some (Quorum.Description.Replica_access i) ->
      Fmt.str "access to a replica of %s" i.Quorum.Item.name
  | Some Quorum.Description.Raw_access -> "non-replica access"
  | None -> "?"

let label_a d (t : Txn.t) =
  match Quorum.Description.role_of d t with
  | Some Quorum.Description.User ->
      if Txn.is_root t then "T0 (root)" else "U  (user transaction)"
  | Some (Quorum.Description.Tm (i, k)) ->
      Fmt.str "%s access to %s"
        (match k with Txn.Read -> "read" | Txn.Write -> "write")
        i.Quorum.Item.name
  | Some (Quorum.Description.Replica_access _) -> "(erased)"
  | Some Quorum.Description.Raw_access -> "access"
  | None -> "?"

let seg_string (s : Txn.seg) = Fmt.str "%a" Txn.pp_seg s

let render ~label names =
  let depth t = Txn.depth t in
  List.iter
    (fun t ->
      let indent = String.concat "" (List.init (depth t) (fun _ -> "  ")) in
      let name =
        if Txn.is_root t then "T0"
        else
          match Txn.last_seg t with Some s -> seg_string s | None -> "?"
      in
      Fmt.pr "%s%-40s %s@." indent name (label t))
    names

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "both" in
  let d = description in
  let run = Quorum.Harness.run_b ~abort_rate:0.0 ~seed:2 d in
  let beta = run.System.schedule in
  let alpha = Quorum.Simulation.project d beta in
  if which = "fig1" || which = "both" then begin
    Fmt.pr "=== Figure 1: transaction tree of replicated system B ===@.";
    Fmt.pr "(x has replicas x1..x3 with majority quorums; y has y1, y2)@.@.";
    render ~label:(label_b d) (tree_of_schedule beta);
    Fmt.pr "@."
  end;
  if which = "fig2" || which = "both" then begin
    Fmt.pr "=== Figure 2: corresponding tree of non-replicated system A ===@.";
    Fmt.pr "(same names: TMs become accesses to single objects x, y)@.@.";
    render ~label:(label_a d) (tree_of_schedule alpha);
    Fmt.pr "@."
  end;
  (* the live proof: alpha replays on A *)
  match Quorum.Simulation.check d beta with
  | Ok _ -> Fmt.pr "Theorem 10 check on this run: OK@."
  | Error e -> Fmt.pr "Theorem 10 check FAILED: %s@." e
