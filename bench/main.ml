(* Micro-benchmarks: one Bechamel test per experiment id of DESIGN.md,
   plus the ablations DESIGN.md calls out (list-based vs bitmask
   quorum checks, 2PL vs MVTO vs no-CC).

   Absolute numbers depend on the host; the benches exist to (a) keep
   every hot path exercised and regression-visible, and (b) regenerate
   the per-experiment timing columns of EXPERIMENTS.md. *)

open Bechamel
open Toolkit
open Ioa
module Prng = Qc_util.Prng

(* ---------- fixtures (built once, outside the staged closures) ---------- *)

let fixture_seed = 1234

let quorum_description =
  let rng = Prng.create fixture_seed in
  Quorum.Gen.description rng

let quorum_schedule =
  (Quorum.Harness.run_b ~seed:fixture_seed quorum_description).System.schedule

let recon_description =
  let rng = Prng.create fixture_seed in
  Recon.Gen.description rng

let recon_schedule =
  (Recon.Harness.run ~seed:fixture_seed recon_description).System.schedule

let cc_description =
  let rng = Prng.create fixture_seed in
  Cc.Harness.concurrent_root rng (Quorum.Gen.description rng) ~extra_tops:3

let dms7 = List.init 7 (fun i -> Fmt.str "d%d" i)
let majority7 = Quorum.Config.majority dms7
let majority7_mask = Store.Strategy.majority 7

let scheduler_state =
  (* a scheduler mid-flight, for stepping *)
  let open Serial.Scheduler in
  let st = initial_state in
  let st = Option.get (transition st (Action.Create Txn.root)) in
  Option.get (transition st (Action.Request_create [ Txn.Seg "t" ]))

(* ---------- the tests ---------- *)

let t_f1_build_system_b =
  Test.make ~name:"F1 build system B"
    (Staged.stage (fun () -> Quorum.System_b.build quorum_description))

let t_f2_build_system_a =
  Test.make ~name:"F2 build system A"
    (Staged.stage (fun () -> Quorum.System_a.build quorum_description))

let t_e5_wellformed =
  Test.make ~name:"E5 well-formedness check"
    (Staged.stage (fun () ->
         Quorum.System_b.check_wellformed quorum_description quorum_schedule))

let t_e7_e8_invariants =
  Test.make ~name:"E7-E8 invariant check"
    (Staged.stage (fun () ->
         Quorum.Invariants.check quorum_description quorum_schedule))

let t_e10_simulation =
  Test.make ~name:"E10 Theorem 10 simulation"
    (Staged.stage (fun () ->
         Quorum.Simulation.check quorum_description quorum_schedule))

let t_e12_recon_invariants =
  Test.make ~name:"E12 recon invariant check"
    (Staged.stage (fun () ->
         Recon.Invariants.check recon_description recon_schedule))

let t_e12_recon_simulation =
  Test.make ~name:"E12 recon simulation"
    (Staged.stage (fun () ->
         Recon.Simulation.check recon_description recon_schedule))

let t_scheduler_step =
  Test.make ~name:"serial scheduler step"
    (Staged.stage (fun () ->
         Serial.Scheduler.transition scheduler_state
           (Action.Create [ Txn.Seg "t" ])))

let t_run_system_b =
  Test.make ~name:"drive system B to quiescence"
    (Staged.stage (fun () ->
         Quorum.Harness.run_b ~seed:fixture_seed quorum_description))

let t_run_recon =
  Test.make ~name:"drive recon system to quiescence"
    (Staged.stage (fun () ->
         Recon.Harness.run ~seed:fixture_seed recon_description))

(* ablation: list-of-quorums coverage vs bitmask coverage *)
let t_ablate_config_lists =
  Test.make ~name:"ablation: quorum coverage (lists)"
    (Staged.stage (fun () ->
         Quorum.Config.read_covered majority7 [ "d1"; "d3"; "d5"; "d6" ]))

let t_ablate_config_bitmask =
  Test.make ~name:"ablation: quorum coverage (bitmask)"
    (Staged.stage (fun () -> majority7_mask.Store.Strategy.read_ok 0b1101010))

let t_config_legal =
  Test.make ~name:"configuration legality (majority-7)"
    (Staged.stage (fun () -> Quorum.Config.legal majority7))

let t_availability_analytic =
  Test.make ~name:"Q1 analytic availability (n=7)"
    (Staged.stage (fun () ->
         Store.Strategy.availability majority7_mask ~p:0.9))

(* ablation: the three concurrency-control modes on the same input *)
let cc_bench mode name =
  Test.make ~name
    (Staged.stage (fun () ->
         Cc.Engine.run
           (Cc.Engine.create ~abort_rate:0.01 ~mode ~seed:fixture_seed
              cc_description)))

let t_cc_2pl = cc_bench `TwoPL "E11 concurrent run (2PL)"
let t_cc_mvto = cc_bench `Mvto "E11 concurrent run (MVTO)"
let t_cc_nocc = cc_bench `NoCC "ablation: concurrent run (no CC)"

let t_locks_cycle =
  Test.make ~name:"2PL acquire-commit cycle"
    (Staged.stage (fun () ->
         let l = Cc.Locks.create () in
         let who : Txn.t = [ Txn.Seg "t" ] in
         ignore
           (Cc.Locks.try_write l ~obj:"o" ~initial:Value.Nil ~who (Value.Int 1));
         Cc.Locks.commit l who))

let t_mvto_cycle =
  Test.make ~name:"MVTO write-commit cycle"
    (Staged.stage (fun () ->
         let m = Cc.Mvto.create () in
         let who : Txn.t = [ Txn.Seg "t" ] in
         ignore
           (Cc.Mvto.try_write m ~obj:"o" ~initial:Value.Nil ~who (Value.Int 1));
         Cc.Mvto.commit m who))

let t_sim_events =
  Test.make ~name:"simulator: 10k timer events"
    (Staged.stage (fun () ->
         let sim = Sim.Core.create ~seed:1 in
         let rec chain n =
           if n > 0 then
             Sim.Core.schedule sim ~delay:1.0 (fun () -> chain (n - 1))
         in
         chain 10_000;
         Sim.Core.run sim))

let t_store_ops =
  Test.make ~name:"Q2 store: small cluster run"
    (Staged.stage (fun () ->
         Store.Cluster.run
           {
             Store.Cluster.default_params with
             workload = { Store.Workload.default_spec with ops_per_client = 25 };
             seed = fixture_seed;
           }))

let t_exhaustive =
  (* exhaustive verification of a small instance: all abort-free
     schedules of the 2-DM majority write+read system *)
  let item =
    Quorum.Item.make ~name:"x" ~dms:[ "d0"; "d1" ]
      ~config:(Quorum.Config.majority [ "d0"; "d1" ])
      ~initial:(Value.Int 0)
  in
  let d =
    {
      Quorum.Description.items = [ item ];
      raw_objects = [];
      root_script =
        {
          Serial.User_txn.children =
            [
              Serial.User_txn.Sub
                ( "t",
                  {
                    Serial.User_txn.children =
                      [
                        Serial.User_txn.Access_child
                          (Txn.Access
                             { obj = "x"; kind = Txn.Write; data = Value.Int 1; seq = 0 });
                      ];
                    ordered = true;
                    eager = false;
                    returns = Serial.User_txn.return_all;
                  } );
            ];
          ordered = true;
          eager = false;
          returns = Serial.User_txn.return_nil;
        };
    }
  in
  Test.make ~name:"EX exhaustive walk (small instance)"
    (Staged.stage (fun () -> Quorum.Explore.check_description d))

let t_adt_merge =
  let entries k =
    List.init k (fun i ->
        {
          Adt.Replica.ts = { Adt.Timestamp.time = i; client = "c"; seq = i };
          op = Adt.Spec.Inc 1;
        })
  in
  let a = entries 100 in
  let b =
    List.map
      (fun (e : Adt.Replica.entry) ->
        { e with Adt.Replica.ts = { e.Adt.Replica.ts with Adt.Timestamp.client = "d" } })
      a
  in
  Test.make ~name:"E13 ADT log merge (2x100 entries)"
    (Staged.stage (fun () -> Adt.Replica.merge a b))

let t_adt_replay =
  let ops = List.init 200 (fun _ -> Adt.Spec.Inc 1) in
  Test.make ~name:"E13 ADT replay (200 ops)"
    (Staged.stage (fun () -> Adt.Spec.replay ops))

let t_vp_view_change =
  Test.make ~name:"E14 VP state merge (5 replicas, 64 keys)"
    (Staged.stage
       (let states =
          List.init 5 (fun r ->
              List.init 64 (fun k -> (Fmt.str "k%d" k, (r, r * 10))))
        in
        fun () -> Vp.Manager.merge_states states))

(* ablation: the RPC engine's retry+hedge policy vs fire-once, same
   lossy cluster — what robustness costs on the hot path *)
let lossy_cluster_params policy =
  {
    Store.Cluster.default_params with
    targeting = `Quorum;
    policy;
    loss = 0.2;
    workload = { Store.Workload.default_spec with ops_per_client = 25 };
    seed = fixture_seed;
  }

let t_rpc_fire_once =
  Test.make ~name:"ablation: lossy cluster, fire-once RPC"
    (Staged.stage (fun () ->
         Store.Cluster.run (lossy_cluster_params Rpc.Policy.default)))

let t_rpc_retry_hedge =
  Test.make ~name:"ablation: lossy cluster, retry+hedge RPC"
    (Staged.stage (fun () ->
         Store.Cluster.run
           (lossy_cluster_params
              (Rpc.Policy.with_hedge ~base:(Rpc.Policy.with_retries 2) 12.0))))

(* the routing layer: one keyspace split four ways, with and without
   multi-key batching — the message-economy numbers of DESIGN.md §10 *)
let sharded_cluster_params batch_window =
  {
    Store.Cluster.default_params with
    n_replicas = 3;
    n_clients = 4;
    n_shards = 4;
    shard_scheme = `Range;
    batch_window;
    workload =
      {
        Store.Workload.default_spec with
        ops_per_client = 25;
        zipf_s = 1.1;
        burst = 8;
      };
    seed = fixture_seed;
  }

let t_sharded_unbatched =
  Test.make ~name:"Q3 sharded cluster run (4 shards, unbatched)"
    (Staged.stage (fun () ->
         Store.Cluster.run (sharded_cluster_params None)))

let t_sharded_batched =
  Test.make ~name:"Q3 sharded cluster run (4 shards, batched)"
    (Staged.stage (fun () ->
         Store.Cluster.run (sharded_cluster_params (Some 1.0))))

(* the replica-side apply pipeline: same sharded cluster with a
   storage device attached — per-install fsync vs group commit — and
   the AIMD-controlled batching window *)
let storage_cluster_params group_commit =
  {
    (sharded_cluster_params None) with
    Store.Cluster.storage_cost = 0.05;
    fsync_cost = 5.0;
    group_commit;
  }

let t_sharded_naive_fsync =
  Test.make ~name:"IO sharded cluster run (per-install fsync)"
    (Staged.stage (fun () ->
         Store.Cluster.run (storage_cluster_params false)))

let t_sharded_group_commit =
  Test.make ~name:"IO sharded cluster run (group commit)"
    (Staged.stage (fun () ->
         Store.Cluster.run (storage_cluster_params true)))

(* the fault-schedule layer on the hot path: the same sharded cluster
   under a scripted rolling partition — each shard in turn isolated
   from the rest for 30 time units, healed before the next window
   opens.  Deterministic (pure timed steps, no storm PRNG), so the
   bench measures the script interpreter + fault handling, not noise. *)
let rolling_partition_script =
  let groups =
    Array.init 4 (fun s -> List.init 3 (fun i -> Fmt.str "s%d:r%d" s i))
  in
  let all = List.concat (Array.to_list groups) in
  List.concat
    (List.init 4 (fun s ->
         let side = groups.(s) in
         let rest = List.filter (fun n -> not (List.mem n side)) all in
         let t0 = 40.0 +. (60.0 *. float_of_int s) in
         [
           Harness.Script.At (t0, Harness.Script.Partition [ side; rest ]);
           Harness.Script.At (t0 +. 30.0, Harness.Script.Heal);
         ]))

let t_scripted_rolling_partition =
  Test.make ~name:"Q4 scripted rolling partition (4 shards)"
    (Staged.stage (fun () ->
         Store.Cluster.run
           {
             (sharded_cluster_params None) with
             Store.Cluster.script = rolling_partition_script;
           }))

let t_sharded_adaptive_window =
  Test.make ~name:"Q3 sharded cluster run (4 shards, adaptive window)"
    (Staged.stage (fun () ->
         Store.Cluster.run
           {
             (sharded_cluster_params None) with
             Store.Cluster.adaptive_window = Some Rpc.Window.default_config;
           }))

(* the tuning layer: the analytic optimizer sweep (every candidate
   family scored and admitted), the steering pick over a quorum set,
   and a full cluster run with the optimizer + steering enabled — what
   workload-awareness costs on the hot path vs Q2's static majority *)
let t_tune_choose =
  Test.make ~name:"T1 optimizer sweep (n=5 candidates)"
    (Staged.stage (fun () ->
         Store.Autotune.choose ~read_fraction:0.9 ~p_alive:0.99
           ~lat:(fun _ -> 1.0)
           5))

let steer_masks =
  Tune.Model.minimal_read_quorums (Store.Autotune.to_system majority7_mask)

let steer_stats =
  {
    Tune.Steer.latency = (fun i -> 1.0 +. (0.1 *. float_of_int i));
    queue = (fun i -> float_of_int (i mod 3));
    queue_weight = 2.0;
  }

let t_tune_steer =
  Test.make ~name:"T2 steering pick (majority-7 quorums)"
    (Staged.stage (fun () -> Tune.Steer.best steer_stats steer_masks))

let t_tuned_cluster =
  Test.make ~name:"T3 tuned cluster run (optimizer + steering)"
    (Staged.stage (fun () ->
         Store.Cluster.run
           {
             Store.Cluster.default_params with
             targeting = `Quorum;
             workload = { Store.Workload.default_spec with ops_per_client = 25 };
             tune = Some Store.Cluster.default_tune_spec;
             seed = fixture_seed;
           }))

let all_tests =
  [
    t_f1_build_system_b;
    t_f2_build_system_a;
    t_e5_wellformed;
    t_e7_e8_invariants;
    t_e10_simulation;
    t_e12_recon_invariants;
    t_e12_recon_simulation;
    t_scheduler_step;
    t_run_system_b;
    t_run_recon;
    t_ablate_config_lists;
    t_ablate_config_bitmask;
    t_config_legal;
    t_availability_analytic;
    t_cc_2pl;
    t_cc_mvto;
    t_cc_nocc;
    t_locks_cycle;
    t_mvto_cycle;
    t_sim_events;
    t_store_ops;
    t_exhaustive;
    t_adt_merge;
    t_adt_replay;
    t_vp_view_change;
    t_rpc_fire_once;
    t_rpc_retry_hedge;
    t_sharded_unbatched;
    t_sharded_batched;
    t_sharded_naive_fsync;
    t_sharded_group_commit;
    t_sharded_adaptive_window;
    t_scripted_rolling_partition;
    t_tune_choose;
    t_tune_steer;
    t_tuned_cluster;
  ]

let test_name t = Test.Elt.name (List.hd (Test.elements t))

let select only =
  match only with
  | None -> all_tests
  | Some sub ->
      let has_sub name =
        let n = String.length name and m = String.length sub in
        let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
        go 0
      in
      List.filter (fun t -> has_sub (test_name t)) all_tests

(* ---------- runner ---------- *)

let benchmark ~quota tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"quorum_nested" tests)
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

(* OBS_TRACE=FILE dumps a Chrome trace of a small seeded cluster run
   alongside the benchmarks — the per-operation window into what the
   bench numbers aggregate. *)
let dump_trace_if_asked () =
  match Sys.getenv_opt "OBS_TRACE" with
  | None -> ()
  | Some path ->
      let r =
        Store.Cluster.run
          {
            Store.Cluster.default_params with
            workload = { Store.Workload.default_spec with ops_per_client = 25 };
            seed = fixture_seed;
            trace_capacity = 262144;
          }
      in
      (try
         Obs.Export.write_chrome path r.Store.Cluster.trace;
         Fmt.epr "OBS_TRACE: wrote %d events to %s@."
           (Obs.Trace.length r.Store.Cluster.trace)
           path
       with Sys_error e -> Fmt.epr "OBS_TRACE: cannot write trace: %s@." e)

(* machine-readable results, for CI artifacts: a stable little JSON
   document, built by hand (names are plain ASCII; escape anyway) *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~quota rows =
  let oc = open_out path in
  Printf.fprintf oc "{\"suite\":\"quorum_nested\",\"quota_s\":%g,\"unit\":\"ns/run\",\"benchmarks\":[" quota;
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "%s{\"name\":\"%s\",\"ns_per_run\":%s}"
        (if i = 0 then "" else ",")
        (json_escape name)
        (if Float.is_finite est then Printf.sprintf "%.1f" est else "null"))
    rows;
  output_string oc "]}\n";
  close_out oc

let run_benchmarks only quota list_only json_file =
  let tests = select only in
  if list_only then begin
    List.iter (fun t -> Fmt.pr "%s@." (test_name t)) tests;
    0
  end
  else if tests = [] then begin
    Fmt.epr "no benchmark matches %s@." (Option.value ~default:"" only);
    1
  end
  else begin
    dump_trace_if_asked ();
    let results = benchmark ~quota tests in
    Fmt.pr "%-55s %18s@." "benchmark" "ns/run";
    Fmt.pr "%s@." (String.make 74 '-');
    let clock = Measure.label Instance.monotonic_clock in
    let rows =
      match Hashtbl.find_opt results clock with
      | None -> []
      | Some tbl ->
          List.sort compare
            (Hashtbl.fold
               (fun name ols acc ->
                 match Analyze.OLS.estimates ols with
                 | Some [ est ] -> (name, est) :: acc
                 | Some _ | None -> (name, nan) :: acc)
               tbl [])
    in
    if rows = [] then Fmt.pr "no results@."
    else
      List.iter (fun (name, est) -> Fmt.pr "%-55s %18.1f@." name est) rows;
    (match json_file with
    | None -> ()
    | Some path -> (
        try
          write_json path ~quota rows;
          Fmt.epr "wrote %d benchmark results to %s@." (List.length rows) path
        with Sys_error e -> Fmt.epr "cannot write %s: %s@." path e));
    0
  end

open Cmdliner

let only =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"SUBSTRING"
        ~doc:"Run only the benchmarks whose name contains $(docv).")

let quota =
  Arg.(
    value & opt float 0.5
    & info [ "quota" ] ~docv:"SECONDS"
        ~doc:"Measurement time budget per benchmark.")

let list_only =
  Arg.(
    value & flag
    & info [ "list" ] ~doc:"List the selected benchmark names and exit.")

let json_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the results as JSON to $(docv).")

let () =
  let doc = "Micro-benchmarks for the quorum_nested experiment index" in
  exit
    (Cmd.eval'
       (Cmd.v
          (Cmd.info "bench" ~doc)
          Term.(const run_benchmarks $ only $ quota $ list_only $ json_file)))
