(* Quickstart: replicate one logical data item across three data
   managers with majority quorums, run a nested transaction against it
   in the replicated serial system B, and put the execution through
   every correctness check of the paper.

   Run with:  dune exec examples/quickstart.exe *)

open Ioa

let () =
  (* 1. A logical data item x, held by three DMs, majority quorums. *)
  let x =
    Quorum.Item.make ~name:"x"
      ~dms:[ "dm1"; "dm2"; "dm3" ]
      ~config:(Quorum.Config.majority [ "dm1"; "dm2"; "dm3" ])
      ~initial:(Value.Int 0)
  in

  (* 2. A user transaction: write 41, then read, then (nested
        subtransaction) write 42, then read again. *)
  let logical_write v seq =
    Serial.User_txn.Access_child
      (Txn.Access { obj = "x"; kind = Txn.Write; data = Value.Int v; seq })
  in
  let logical_read seq =
    Serial.User_txn.Access_child
      (Txn.Access { obj = "x"; kind = Txn.Read; data = Value.Nil; seq })
  in
  let script =
    {
      Serial.User_txn.children =
        [
          logical_write 41 0;
          logical_read 1;
          Serial.User_txn.Sub
            ( "bump",
              {
                Serial.User_txn.children = [ logical_write 42 0 ];
                ordered = true;
                eager = false;
                returns = Serial.User_txn.return_nil;
              } );
          logical_read 3;
        ];
      ordered = true;
      eager = false;
      returns = Serial.User_txn.return_all;
    }
  in
  let description =
    {
      Quorum.Description.items = [ x ];
      raw_objects = [];
      root_script =
        {
          Serial.User_txn.children = [ Serial.User_txn.Sub ("demo", script) ];
          ordered = true;
          eager = false;
          returns = Serial.User_txn.return_nil;
        };
    }
  in

  (* 3. Drive the replicated serial system. *)
  let run = Quorum.Harness.run_b ~abort_rate:0.0 ~seed:7 description in
  Fmt.pr "executed %d operations, quiescent=%b@."
    (List.length run.System.schedule)
    run.System.quiescent;

  (* 4. What did the logical reads return? *)
  List.iter
    (fun a ->
      match a with
      | Action.Request_commit (t, v)
        when Txn.obj_of t = Some "x" && Txn.kind_of t = Some Txn.Read ->
          Fmt.pr "logical read %a returned %a@." Txn.pp t Value.pp v
      | _ -> ())
    run.System.schedule;
  Fmt.pr "final logical state of x: %a (current version %d)@." Value.pp
    (Quorum.Logical.logical_state x run.System.schedule)
    (Quorum.Logical.current_vn x run.System.schedule);
  List.iter
    (fun (dm, (vn, v)) -> Fmt.pr "  %s holds <vn=%d, %a>@." dm vn Value.pp v)
    (Quorum.Logical.dm_states x run.System.schedule);

  (* 5. The paper's correctness results, checked on this run:
        Lemma 5 (well-formedness), Lemmas 6-8 (replication
        invariants), Theorem 10 (the run projects onto a schedule of
        the non-replicated system A). *)
  match Quorum.Harness.check_all description run.System.schedule with
  | Ok () -> Fmt.pr "all checks pass: Lemmas 5-8 and Theorem 10 hold.@."
  | Error e -> Fmt.pr "CHECK FAILED: %s@." e
