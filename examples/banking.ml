(* Banking: the classic nested-transaction workload the paper's model
   was designed for (cf. ARGUS).  Accounts are replicated logical
   items; a transfer is a nested transaction whose subtransactions
   read and update two accounts.  Many transfers run concurrently
   under nested two-phase locking at the copy level (system C of
   Theorem 11), with random aborts injected; the oracle then verifies
   the whole history is one-copy serializable, and we verify the
   bank's books balance.

   Run with:  dune exec examples/banking.exe *)

open Ioa
module Prng = Qc_util.Prng

let n_accounts = 4
let initial_balance = 1000

let account i = Fmt.str "acct%d" i

let items =
  List.init n_accounts (fun i ->
      let name = account i in
      let dms = List.init 3 (fun r -> Fmt.str "%s_r%d" name r) in
      Quorum.Item.make ~name ~dms
        ~config:(Quorum.Config.majority dms)
        ~initial:(Value.Int initial_balance))

(* A transfer is modelled with statically-chosen amounts (transaction
   names carry their parameters): subtransaction "debit" writes the
   debited balance, "credit" writes the credited balance.  Because the
   scripts are static, the amounts are fixed per transfer and the
   invariant we check is conservation: when only complete transfer
   pairs commit, total balance is preserved. *)
let transfer ~from_ ~to_ ~amount ~from_balance ~to_balance =
  let write acct v seq =
    Serial.User_txn.Access_child
      (Txn.Access { obj = acct; kind = Txn.Write; data = Value.Int v; seq })
  in
  let read acct seq =
    Serial.User_txn.Access_child
      (Txn.Access { obj = acct; kind = Txn.Read; data = Value.Nil; seq })
  in
  {
    Serial.User_txn.children =
      [
        Serial.User_txn.Sub
          ( "debit",
            {
              Serial.User_txn.children =
                [ read from_ 0; write from_ (from_balance - amount) 1 ];
              ordered = true;
              eager = false;
              returns = Serial.User_txn.return_all;
            } );
        Serial.User_txn.Sub
          ( "credit",
            {
              Serial.User_txn.children =
                [ read to_ 0; write to_ (to_balance + amount) 1 ];
              ordered = true;
              eager = false;
              returns = Serial.User_txn.return_all;
            } );
      ];
    ordered = true;
    eager = false;
    returns = Serial.User_txn.return_nil;
  }

let () =
  let seed = match Sys.argv with [| _; s |] -> int_of_string s | _ -> 11 in
  (* Each transfer moves money between a disjoint pair of accounts
     (so amounts can be static yet conserved): 0->1 and 2->3. *)
  let description =
    {
      Quorum.Description.items;
      raw_objects = [];
      root_script =
        {
          Serial.User_txn.children =
            [
              Serial.User_txn.Sub
                ( "transfer_0_to_1",
                  transfer ~from_:(account 0) ~to_:(account 1) ~amount:100
                    ~from_balance:initial_balance ~to_balance:initial_balance );
              Serial.User_txn.Sub
                ( "transfer_2_to_3",
                  transfer ~from_:(account 2) ~to_:(account 3) ~amount:250
                    ~from_balance:initial_balance ~to_balance:initial_balance );
            ];
          ordered = false;
          eager = false;
          returns = Serial.User_txn.return_nil;
        };
    }
  in
  Fmt.pr "running 2 concurrent transfers over %d replicated accounts...@."
    n_accounts;
  let log = Cc.Harness.run ~abort_rate:0.01 ~mode:`TwoPL ~seed description in
  Fmt.pr "engine: %d steps, peak concurrency %d, %d top-level commits@."
    log.Cc.Engine.steps log.peak_concurrency
    (List.length log.commit_order);

  (* Theorem 11: the concurrent replicated history is one-copy
     serializable at the logical level. *)
  (match Cc.Oracle.check description log with
  | Ok () -> Fmt.pr "Theorem 11 check: one-copy serializable.@."
  | Error m -> Fmt.pr "Theorem 11 check FAILED: %s %s@." m.Cc.Oracle.what m.detail);

  (* Books: read final balances out of the committed replicas. *)
  let balance (i : Quorum.Item.t) =
    (* value at the highest version among the DMs *)
    let best =
      List.fold_left
        (fun (bvn, bv) dm ->
          match List.assoc_opt dm log.Cc.Engine.final_dms with
          | Some (Value.Versioned (vn, Value.Int v)) when vn > bvn -> (vn, v)
          | _ -> (bvn, bv))
        (0, initial_balance) i.Quorum.Item.dms
    in
    snd best
  in
  let total = ref 0 in
  List.iter
    (fun (i : Quorum.Item.t) ->
      let b = balance i in
      total := !total + b;
      Fmt.pr "  %s: %d@." i.Quorum.Item.name b)
    items;
  Fmt.pr "total balance: %d (initial total %d)@." !total
    (n_accounts * initial_balance);

  (* Conservation: the nested model lets a parent continue after a
     child aborts, so a transfer may legally half-apply (the paper's
     point about accommodating transaction failures).  The books must
     therefore match exactly the committed, non-orphan subtransactions
     — which is what we assert per account pair. *)
  let committed name =
    match List.assoc_opt name log.Cc.Engine.outcomes with
    | Some (Cc.Engine.Committed _) -> true
    | _ -> false
  in
  let sub transfer leg : Txn.t = [ Txn.Seg transfer; Txn.Seg leg ] in
  (* a leg's money movement applied iff the whole chain — top-level,
     leg subtransaction, and the write-TM itself — committed
     (the nested model lets any of them abort independently) *)
  let write_tm transfer leg acct v : Txn.t =
    sub transfer leg
    @ [ Txn.Access { obj = acct; kind = Txn.Write; data = Value.Int v; seq = 1 } ]
  in
  let check_pair transfer a b amount =
    let top : Txn.t = [ Txn.Seg transfer ] in
    let debit_ok =
      committed top
      && committed (sub transfer "debit")
      && committed
           (write_tm transfer "debit" (account a) (initial_balance - amount))
    in
    let credit_ok =
      committed top
      && committed (sub transfer "credit")
      && committed
           (write_tm transfer "credit" (account b) (initial_balance + amount))
    in
    let expected_a = if debit_ok then initial_balance - amount else initial_balance in
    let expected_b = if credit_ok then initial_balance + amount else initial_balance in
    let got_a = balance (List.nth items a) in
    let got_b = balance (List.nth items b) in
    Fmt.pr "%s: debit %s, credit %s -> expected (%d, %d), got (%d, %d)@."
      transfer
      (if debit_ok then "committed" else "aborted")
      (if credit_ok then "committed" else "aborted")
      expected_a expected_b got_a got_b;
    assert (got_a = expected_a && got_b = expected_b)
  in
  check_pair "transfer_0_to_1" 0 1 100;
  check_pair "transfer_2_to_3" 2 3 250;
  Fmt.pr "books match the committed subtransactions exactly.@."
