(* General Quorum Consensus for abstract data types (the paper's §5
   extension target, Herlihy [12]): a replicated counter and a
   replicated FIFO queue as timestamped operation logs with
   per-operation quorums.

   The point on display: counter increments and enqueues are BLIND
   mutators — they need no read round at all, just one push to a write
   quorum — and they commute, so concurrent clients lose nothing.

   Run with:  dune exec examples/adt_counter.exe *)

module Core = Sim.Core
module Net = Sim.Net

let () =
  let sim = Core.create ~seed:15 in
  let replica_names = List.init 5 (fun i -> Fmt.str "r%d" i) in
  let clients = [ "alice"; "bob" ] in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ clients)
      ~latency:(Net.lognormal_latency ~mu:1.0 ~sigma:0.5)
      ()
  in
  let replicas = List.map (fun name -> Adt.Replica.create ~name) replica_names in
  List.iter (fun r -> Adt.Replica.attach r ~net) replicas;
  let mk name =
    let c =
      Adt.Client.create ~name ~sim ~net
        ~replicas:(Array.of_list replica_names)
        ~strategy:(Store.Strategy.majority 5)
        ()
    in
    Adt.Client.attach c;
    c
  in
  let alice = mk "alice" and bob = mk "bob" in

  (* two clients racing increments on a shared counter *)
  let done_incs = ref 0 in
  let fire client n =
    for _ = 1 to n do
      Adt.Client.execute client ~key:"hits" ~op:(Adt.Spec.Inc 1)
        ~on_done:(fun ~ok ~result:_ ~latency:_ -> if ok then incr done_incs)
    done
  in
  fire alice 50;
  fire bob 50;
  Core.run sim;
  Fmt.pr "increments completed: %d@." !done_incs;
  Adt.Client.execute alice ~key:"hits" ~op:Adt.Spec.Total
    ~on_done:(fun ~ok ~result ~latency ->
      match (ok, result) with
      | true, Adt.Spec.Value total ->
          Fmt.pr "observed total: %d (latency %.2f) — nothing lost@." total
            latency;
          assert (total = !done_incs)
      | _ -> Fmt.pr "observation failed@.");
  Core.run sim;

  (* a replicated work queue: alice enqueues jobs, bob drains them *)
  List.iter
    (fun job ->
      Adt.Client.execute alice ~key:"jobs" ~op:(Adt.Spec.Enq job)
        ~on_done:(fun ~ok:_ ~result:_ ~latency:_ -> ()))
    [ 101; 102; 103 ];
  Core.run sim;
  let rec drain () =
    Adt.Client.execute bob ~key:"jobs" ~op:Adt.Spec.Deq
      ~on_done:(fun ~ok ~result ~latency:_ ->
        match (ok, result) with
        | true, Adt.Spec.Value job ->
            Fmt.pr "bob dequeued job %d@." job;
            drain ()
        | true, Adt.Spec.Empty -> Fmt.pr "queue drained@."
        | _ -> Fmt.pr "dequeue failed@.")
  in
  drain ();
  Core.run sim
