(* The practical replicated store: five replicas under a crash/recover
   failure process, four closed-loop clients running a zipfian
   read-mostly workload, quorum consensus per the paper's algorithm.
   Compares strategies, prints latency and availability, and runs the
   built-in consistency audit (quorum intersection at work).

   Run with:  dune exec examples/replicated_store.exe *)

let run_one name strategy =
  let r =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        strategy;
        failures = Some { Sim.Failure.mtbf = 500.0; mttr = 80.0 };
        workload =
          {
            Store.Workload.default_spec with
            ops_per_client = 400;
            read_fraction = 0.8;
            zipf_s = 1.1;
          };
        seed = 2024;
      }
  in
  Fmt.pr "@.%s@." name;
  Fmt.pr "  reads : %a@." Sim.Stats.pp_summary r.Store.Cluster.reads;
  Fmt.pr "  writes: %a@." Sim.Stats.pp_summary r.writes;
  Fmt.pr "  ok=%d failed=%d availability=%.4f@."
    (r.ok_reads + r.ok_writes)
    (r.failed_reads + r.failed_writes)
    (Store.Cluster.availability r);
  Fmt.pr "  network: sent=%d delivered=%d dropped=%d@." r.net.Sim.Net.sent
    r.net.delivered r.net.dropped;
  (match r.audit_violations with
  | [] -> Fmt.pr "  consistency audit: clean@."
  | vs ->
      Fmt.pr "  consistency audit: %d VIOLATIONS@." (List.length vs);
      List.iter (fun v -> Fmt.pr "    %s@." v) vs);
  r

let () =
  Fmt.pr
    "replicated key-value store: 5 replicas, crash/recover failures \
     (p~%.2f/site), 4 clients, zipf keys, 80%% reads@."
    (Sim.Failure.availability { Sim.Failure.mtbf = 500.0; mttr = 80.0 });
  let rowa = run_one "read-one/write-all" Store.Strategy.rowa in
  let maj = run_one "majority" Store.Strategy.majority in
  let grid =
    run_one "grid 1x5-ish (weighted)" (fun n ->
        Store.Strategy.weighted ~name:"w21111"
          ~votes:(Array.init n (fun i -> if i = 0 then 2 else 1))
          ~r:2 ~w:(n + 1))
  in
  ignore grid;
  Fmt.pr "@.=== headline comparison ===@.";
  Fmt.pr "read p50:  rowa %.2f vs majority %.2f (rowa should win)@."
    rowa.Store.Cluster.reads.Sim.Stats.p50 maj.Store.Cluster.reads.Sim.Stats.p50;
  Fmt.pr "write availability under failures: rowa %.4f vs majority %.4f \
          (majority should win)@."
    (let ok = rowa.ok_writes and bad = rowa.failed_writes in
     float_of_int ok /. float_of_int (max 1 (ok + bad)))
    (let ok = maj.ok_writes and bad = maj.failed_writes in
     float_of_int ok /. float_of_int (max 1 (ok + bad)))
