(* A driveable replicated-store shell: simulated replicas under
   majority quorums, controlled by commands on stdin.  Useful for
   poking at quorum behaviour by hand (or from a script).

     put KEY INT        quorum write
     get KEY            quorum read
     crash NODE         e.g. crash r3
     recover NODE
     cut A B            cut the link between two nodes
     heal A B
     dump               print every replica's stored state
     policy             show the RPC retry/hedge policy
     policy retries N   N bounded retries per request (0 disables)
     policy hedge D     hedge to the remaining replicas after D time units
     policy off         back to fire-once (the default)
     loss P             set the network's message-loss probability
     shards             show the shard layout
     shards N [hash|range]
                        rebuild the world with N shards of 5 replicas
                        each (all state is reset)
     batch W            coalesce per-replica requests over a W-unit window
     batch off          back to unbatched (the default)
     window adaptive    AIMD-controlled batching window (replaces batch)
     window off         remove the controller (batching stays at its
                        current width)
     storage W F [naive|group]
                        rebuild the world with a storage device per
                        replica: W per-write cost, F per-fsync cost,
                        naive (fsync per install) or group commit
                        (default; all state is reset)
     storage off        rebuild without storage (all state is reset)
     top                live per-shard health over the last 200 time
                        units: op rate, read fraction, success rate,
                        p99 latency, apply-queue depth
     balance            per-replica load, per-shard totals and spread
     txn begin          open a cross-shard transaction buffer
     txn read KEY       add KEY to the open transaction's read set
     txn write KEY INT  add a write to the open transaction
     txn commit [2pc|paxos]
                        run the buffered transaction end to end:
                        prepare locks a vote quorum per shard, then
                        the decision is a coordinator bit (2pc) or a
                        Paxos register over the participant replicas
                        (paxos, the default)
     txn abort          discard the buffer without touching replicas
     txn                show the open transaction's footprint
     nemesis SCRIPT     install a fault schedule (Harness.Script text
                        form) relative to now, e.g.
                        nemesis @10 crash r0; @40 recover r0
     script             show every fault schedule installed so far
     lint               statically check every shard's quorum
                        configuration (intersection, minimality,
                        non-domination) without touching the simulation
     lint static        run the whole-program analyzer over lib/
                        (effect taint, handler totality, lock-order) —
                        needs the .cmt files of a `dune build`
     tune               per-shard strategy report: current strategy,
                        live read fraction over the health window, and
                        the workload-aware optimizer's pick with its
                        predicted load / latency / availability
     stats              ops / network counters
     metrics            dump the metrics registry
     trace FILE         write the session's Chrome trace (Perfetto)
     help | quit

   Every operation is traced; `trace session.json` writes what
   happened so far, and setting OBS_TRACE=FILE in the environment
   writes the whole session's trace on quit.

   Example:
     printf 'put a 1\ncrash r0\ncrash r1\nput a 2\nget a\nquit\n' \
       | dune exec examples/store_repl.exe *)

module Core = Sim.Core
module Net = Sim.Net

let replicas_per_shard = 5
let n_keys = 100 (* bounds the [`Range] partition (keys "k0".."k99") *)

type world = {
  sim : Core.t;
  tracer : Obs.Trace.t;
  metrics : Obs.Metrics.t;
  net : Store.Protocol.msg Net.t;
  replicas : Store.Replica.t list;
  router : Store.Router.t;
  health : Obs.Health.t;
  n_shards : int;
  scheme : Store.Router.scheme;
  storage : (float * float * bool) option;
      (* (write_cost, fsync_cost, group_commit) of every replica's
         device; [None] = synchronous installs (the default) *)
  groups : string array array;
  mutable nemesis : (float * Harness.Script.t) list;
      (* fault schedules installed this session, oldest first, each
         tagged with the virtual time it was installed at *)
}

(* Build a fresh world: [n_shards] disjoint replica groups of
   [replicas_per_shard] each, one majority strategy per shard, keys
   routed by [scheme].  With one shard the construction (names, seeds,
   labels, handler registration) is exactly the historical
   single-group shell, so scripted default sessions reproduce byte for
   byte. *)
let make_world ~n_shards ~scheme ~storage =
  let sim = Core.create ~seed:7 in
  let tracer = Obs.Trace.create ~capacity:65536 () in
  Core.attach_tracer sim tracer;
  let metrics = Obs.Metrics.create () in
  let groups =
    Array.init n_shards (fun s ->
        Array.init replicas_per_shard (fun i ->
            if n_shards = 1 then Fmt.str "r%d" i else Fmt.str "s%d:r%d" s i))
  in
  let replica_names = List.concat_map Array.to_list (Array.to_list groups) in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ [ "client" ])
      ~latency:(Net.lognormal_latency ~mu:0.7 ~sigma:0.4)
      ()
  in
  let replicas =
    List.map
      (fun name ->
        let extra_labels =
          if n_shards = 1 then []
          else [ ("shard", String.sub name 1 (String.index name ':' - 1)) ]
        in
        match storage with
        | None -> Store.Replica.create ~metrics ~name ~extra_labels ()
        | Some (write_cost, fsync_cost, group_commit) ->
            Store.Replica.create ~metrics ~name ~extra_labels
              ~storage:
                (Sim.Storage.create ~sim ~name:(name ^ ":disk") ~write_cost
                   ~fsync_cost ())
              ~group_commit ())
      replica_names
  in
  List.iter (fun r -> Store.Replica.attach r ~net) replicas;
  let router =
    Store.Router.create ~name:"client" ~sim ~net ~groups
      ~strategies:
        (Array.init n_shards (fun _ ->
             Store.Strategy.majority replicas_per_shard))
      ~scheme ~n_keys ~timeout:50.0 ~read_repair:true ~trace_ctx:true ~metrics
      ()
  in
  Store.Router.attach router;
  (* per-shard apply-queue probe: mean queue depth over the shard's
     replicas at sample time *)
  let queue_depth s =
    let group = Store.Router.replicas router ~shard:s in
    let depths =
      List.filter_map
        (fun (r : Store.Replica.t) ->
          if Array.exists (String.equal r.Store.Replica.name) group then
            Some (Store.Replica.queue_depth r)
          else None)
        replicas
    in
    match depths with
    | [] -> Float.nan
    | _ ->
        float_of_int (List.fold_left ( + ) 0 depths)
        /. float_of_int (List.length depths)
  in
  let health = Obs.Health.create ~window:200.0 ~n_shards ~queue_depth () in
  { sim; tracer; metrics; net; replicas; router; health; n_shards; scheme;
    storage; groups; nemesis = [] }

(* shards N [hash|range] — [Ok None] means "just show the layout" *)
let parse_shards = function
  | [] -> Ok None
  | n :: rest -> (
      match int_of_string_opt n with
      | None -> Error "shard count must be an integer"
      | Some n when n < 1 || n > 16 -> Error "shard count must be in [1, 16]"
      | Some n -> (
          match rest with
          | [] -> Ok (Some (n, None))
          | [ "hash" ] -> Ok (Some (n, Some `Hash))
          | [ "range" ] -> Ok (Some (n, Some `Range))
          | _ -> Error "scheme must be 'hash' or 'range'"))

(* storage W F [naive|group] | storage off — [Ok None] shows the device *)
let parse_storage = function
  | [] -> Ok None
  | [ "off" ] -> Ok (Some None)
  | w :: f :: rest -> (
      match (float_of_string_opt w, float_of_string_opt f) with
      | Some w, Some f
        when Float.is_finite w && w >= 0.0 && Float.is_finite f && f >= 0.0 -> (
          match rest with
          | [] | [ "group" ] -> Ok (Some (Some (w, f, true)))
          | [ "naive" ] -> Ok (Some (Some (w, f, false)))
          | _ -> Error "discipline must be 'naive' or 'group'"
      )
      | _ -> Error "costs must be finite numbers >= 0")
  | _ -> Error "usage: storage [W F [naive|group] | off]"

(* Statically verify every shard's live quorum configuration: lower
   the bitmask strategy to an explicit {!Quorum.Config} over the
   shard's replica names and run the lint's quorum checker on it —
   the same verdicts `lint.exe quorum` computes, but against the world
   the shell actually routes to. *)
let lint_world w =
  let shard s =
    let group = Store.Router.replicas w.router ~shard:s in
    let strat = Store.Router.strategy w.router ~shard:s in
    let n = strat.Store.Strategy.n in
    if Array.length group <> n then
      Error
        (Fmt.str "shard %d: %d replicas but strategy %s expects %d" s
           (Array.length group) strat.Store.Strategy.name n)
    else
      let names_of mask =
        List.filter_map
          (fun i -> if mask land (1 lsl i) <> 0 then Some group.(i) else None)
          (List.init n Fun.id)
      in
      let config =
        Quorum.Config.make
          ~read_quorums:
            (List.map names_of (Store.Strategy.minimal_read_quorums strat))
          ~write_quorums:
            (List.map names_of (Store.Strategy.minimal_write_quorums strat))
      in
      Ok
        (Lint.Quorum_check.check_config
           ~name:(Fmt.str "shard%d:%s" s strat.Store.Strategy.name)
           config)
  in
  let rec go s acc =
    if s >= Store.Router.n_shards w.router then Ok (List.rev acc)
    else
      match shard s with Error e -> Error e | Ok v -> go (s + 1) (v :: acc)
  in
  go 0 []

(* The transaction layer's extra static obligation, checked against
   the live world: commit-version uniqueness needs any two prepare
   (vote) quorums of a shard to intersect — a vote quorum is a mask
   that is simultaneously a read and a write quorum, so this follows
   from read/write intersection only when both predicates are
   monotone, which is worth verifying rather than assuming. *)
let txn_lint w =
  List.init (Store.Router.n_shards w.router) (fun s ->
      let strat = Store.Router.strategy w.router ~shard:s in
      let n = strat.Store.Strategy.n in
      let votes =
        List.filter
          (fun m ->
            strat.Store.Strategy.read_ok m && strat.Store.Strategy.write_ok m)
          (List.init ((1 lsl n) - 1) (fun i -> i + 1))
      in
      let ok =
        votes <> []
        && List.for_all
             (fun a -> List.for_all (fun b -> a land b <> 0) votes)
             votes
      in
      (s, ok))

(* batch W | batch off — [Ok None] means "just show the window" *)
let parse_batch = function
  | [] -> Ok None
  | [ "off" ] -> Ok (Some None)
  | [ w ] -> (
      match float_of_string_opt w with
      | Some w when Float.is_finite w && w >= 0.0 -> Ok (Some (Some w))
      | _ -> Error "window must be a finite number >= 0")
  | _ -> Error "usage: batch [W | off]"

let () =
  let w = ref (make_world ~n_shards:1 ~scheme:`Hash ~storage:None) in
  (* the open transaction's buffered footprint (reversed input order),
     and the txid sequence shared by every coordinator this session —
     replicas remember decided txids, so the sequence never restarts *)
  let txn_buf : (string list * (string * int) list) option ref = ref None in
  let txn_seq = ref 0 in
  Fmt.pr "replicated store: 5 replicas, majority quorums, read repair on.@.";
  Fmt.pr "type 'help' for commands.@.";
  let run_op f =
    f ();
    (* drive the simulation until the operation resolves *)
    Core.run !w.sim
  in
  (* feed the health monitor from inside each op's completion callback,
     at the virtual time the op resolved *)
  let observe_health ~key ~read ~ok ~latency =
    Obs.Health.record !w.health ~at:(Core.now !w.sim)
      ~shard:(Store.Router.shard_of !w.router key)
      ~read ~ok ~latency
  in
  let rec loop () =
    match In_channel.input_line stdin with
    | None -> ()
    | Some line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "" ] -> loop ()
        | [ "quit" ] | [ "exit" ] ->
            (match Sys.getenv_opt "OBS_TRACE" with
            | Some path -> (
                try
                  Obs.Export.write_chrome path !w.tracer;
                  Fmt.pr "wrote %d trace events to %s@."
                    (Obs.Trace.length !w.tracer) path
                with Sys_error e -> Fmt.pr "cannot write trace: %s@." e)
            | None -> ());
            Fmt.pr "bye.@."
        | [ "help" ] ->
            Fmt.pr
              "put KEY INT | get KEY | crash NODE | recover NODE | cut A B | \
               heal A B | dump | policy [retries N | hedge D | off] | loss P | \
               shards [N [hash|range]] | batch [W | off] | window [adaptive | \
               off] | storage [W F [naive|group] | off] | txn [begin | read \
               KEY | write KEY INT | commit [2pc|paxos] | abort] | nemesis \
               SCRIPT | script | top | balance | lint | tune | stats | \
               metrics | trace FILE | quit@.";
            loop ()
        | [ "put"; key; v ] ->
            (match int_of_string_opt v with
            | None -> Fmt.pr "value must be an integer@."
            | Some value ->
                run_op (fun () ->
                    Store.Router.write !w.router ~key ~value
                      ~on_done:(fun ~ok ~vn ~value:_ ~latency ->
                        observe_health ~key ~read:false ~ok ~latency;
                        if ok then
                          Fmt.pr "OK  %s := %d (version %d, %.1f time units)@."
                            key value vn latency
                        else Fmt.pr "FAIL %s := %d (no write quorum)@." key value)));
            loop ()
        | [ "get"; key ] ->
            run_op (fun () ->
                Store.Router.read !w.router ~key
                  ~on_done:(fun ~ok ~vn ~value ~latency ->
                    observe_health ~key ~read:true ~ok ~latency;
                    if ok then
                      Fmt.pr "OK  %s = %d (version %d, %.1f time units)@." key
                        value vn latency
                    else Fmt.pr "FAIL %s (no read quorum)@." key));
            loop ()
        | [ "crash"; node ] ->
            Net.crash !w.net node;
            Fmt.pr "crashed %s@." node;
            loop ()
        | [ "recover"; node ] ->
            Net.recover !w.net node;
            Fmt.pr "recovered %s@." node;
            loop ()
        | [ "cut"; a; b ] ->
            Net.cut_link !w.net a b;
            Fmt.pr "cut %s <-> %s@." a b;
            loop ()
        | [ "heal"; a; b ] ->
            Net.heal_link !w.net a b;
            Fmt.pr "healed %s <-> %s@." a b;
            loop ()
        | [ "dump" ] ->
            List.iter
              (fun (r : Store.Replica.t) ->
                let state =
                  Hashtbl.fold
                    (fun k (vn, v) acc -> Fmt.str "%s=<%d,%d>" k vn v :: acc)
                    r.Store.Replica.data []
                in
                Fmt.pr "%-4s %s %s@." r.Store.Replica.name
                  (if Net.is_up !w.net r.Store.Replica.name then "up  "
                   else "DOWN")
                  (String.concat " " (List.sort compare state)))
              !w.replicas;
            loop ()
        | "policy" :: rest ->
            (* validate before applying: bad values get an error line,
               never an exception *)
            let apply p =
              match Rpc.Policy.validate p with
              | Ok () ->
                  Store.Router.set_policy !w.router p;
                  Fmt.pr "policy: %a@." Rpc.Policy.pp p
              | Error e -> Fmt.pr "invalid policy: %s@." e
            in
            (match rest with
            | [] ->
                Fmt.pr "policy: %a@." Rpc.Policy.pp
                  (Store.Router.policy !w.router)
            | [ "off" ] -> apply Rpc.Policy.default
            | [ "retries"; n ] -> (
                match int_of_string_opt n with
                | None -> Fmt.pr "invalid policy: retries takes an integer@."
                | Some n ->
                    apply
                      { (Store.Router.policy !w.router) with
                        Rpc.Policy.max_attempts = n + 1 })
            | [ "hedge"; d ] -> (
                match float_of_string_opt d with
                | None -> Fmt.pr "invalid policy: hedge takes a number@."
                | Some d ->
                    apply
                      { (Store.Router.policy !w.router) with
                        Rpc.Policy.hedge_delay = Some d })
            | _ ->
                Fmt.pr "usage: policy [retries N | hedge D | off]@.");
            loop ()
        | [ "loss"; p ] ->
            (match float_of_string_opt p with
            | Some p when p >= 0.0 && p < 1.0 ->
                Net.set_loss !w.net p;
                Fmt.pr "loss: %g@." p
            | _ -> Fmt.pr "loss must be a number in [0, 1)@.");
            loop ()
        | "shards" :: rest ->
            (match parse_shards rest with
            | Error e -> Fmt.pr "invalid shards: %s@." e
            | Ok None ->
                Fmt.pr "shards: %d (%s), %d replicas each@." !w.n_shards
                  (Store.Router.scheme_label !w.scheme)
                  replicas_per_shard
            | Ok (Some (n, scheme)) ->
                let scheme = Option.value scheme ~default:!w.scheme in
                w := make_world ~n_shards:n ~scheme ~storage:!w.storage;
                Fmt.pr
                  "rebuilt: %d shard%s (%s), %d replicas each — all state \
                   reset@."
                  n
                  (if n = 1 then "" else "s")
                  (Store.Router.scheme_label scheme)
                  replicas_per_shard;
                if n > 1 then
                  Fmt.pr "replicas are named s<shard>:r<index>, e.g. s0:r0@.");
            loop ()
        | "batch" :: rest ->
            (match parse_batch rest with
            | Error e -> Fmt.pr "invalid batch: %s@." e
            | Ok None -> (
                match Store.Router.batch_window !w.router with
                | None -> Fmt.pr "batch: off@."
                | Some win -> Fmt.pr "batch: window %g@." win)
            | Ok (Some win) ->
                Store.Router.set_batch_window !w.router win;
                (match win with
                | None -> Fmt.pr "batch: off@."
                | Some win -> Fmt.pr "batch: window %g@." win));
            loop ()
        | "window" :: rest ->
            (match rest with
            | [] -> (
                match Store.Router.adaptive_window !w.router with
                | Some c ->
                    Fmt.pr "window: adaptive, currently %g (%a)@."
                      (Rpc.Window.window c) Rpc.Window.pp_config
                      (Rpc.Window.config c)
                | None -> Fmt.pr "window: static (see 'batch')@.")
            | [ "adaptive" ] ->
                Store.Router.set_adaptive_window !w.router
                  (Some Rpc.Window.default_config);
                Fmt.pr "window: adaptive (%a)@." Rpc.Window.pp_config
                  Rpc.Window.default_config
            | [ "off" ] ->
                Store.Router.set_adaptive_window !w.router None;
                Fmt.pr "window: controller removed (batching unchanged, see \
                        'batch')@."
            | _ -> Fmt.pr "usage: window [adaptive | off]@.");
            loop ()
        | "storage" :: rest ->
            (match parse_storage rest with
            | Error e -> Fmt.pr "invalid storage: %s@." e
            | Ok None -> (
                match !w.storage with
                | None -> Fmt.pr "storage: off (synchronous installs)@."
                | Some (wc, fc, gc) ->
                    Fmt.pr "storage: write %g fsync %g, %s commit@." wc fc
                      (if gc then "group" else "per-install (naive)"))
            | Ok (Some storage) ->
                w := make_world ~n_shards:!w.n_shards ~scheme:!w.scheme ~storage;
                (match storage with
                | None -> Fmt.pr "rebuilt without storage — all state reset@."
                | Some (wc, fc, gc) ->
                    Fmt.pr
                      "rebuilt: storage write %g fsync %g, %s commit — all \
                       state reset@."
                      wc fc
                      (if gc then "group" else "per-install (naive)")));
            loop ()
        | [ "top" ] ->
            Fmt.pr "%s%!"
              (Obs.Health.render
                 (Obs.Health.sample !w.health ~at:(Core.now !w.sim)));
            loop ()
        | [ "balance" ] ->
            let shard_loads =
              List.init !w.n_shards (fun s ->
                  let group = Store.Router.replicas !w.router ~shard:s in
                  let loads =
                    List.filter
                      (fun (r : Store.Replica.t) ->
                        Array.exists (String.equal r.Store.Replica.name) group)
                      !w.replicas
                    |> List.map (fun (r : Store.Replica.t) ->
                           (r.Store.Replica.name, Store.Replica.load r))
                  in
                  let total = List.fold_left (fun a (_, l) -> a + l) 0 loads in
                  Fmt.pr "shard %d: %s | total %d@." s
                    (String.concat " "
                       (List.map (fun (n, l) -> Fmt.str "%s=%d" n l) loads))
                    total;
                  total)
            in
            let total = List.fold_left ( + ) 0 shard_loads in
            let mean = float_of_int total /. float_of_int !w.n_shards in
            let imbalance =
              if total = 0 then 1.0
              else float_of_int (List.fold_left max 0 shard_loads) /. mean
            in
            Fmt.pr "total load %d | shard imbalance (max/mean) %.2f@." total
              imbalance;
            loop ()
        | "txn" :: rest ->
            let in_footprint (reads, writes) key =
              List.mem key reads || List.mem_assoc key writes
            in
            let commit mode =
              match !txn_buf with
              | None -> Fmt.pr "txn: none open (use 'txn begin')@."
              | Some ([], []) ->
                  txn_buf := None;
                  Fmt.pr "txn: empty footprint — trivially committed@."
              | Some (rreads, rwrites) ->
                  txn_buf := None;
                  let reads = List.rev rreads
                  and writes = List.rev rwrites in
                  let co =
                    Store.Txn.create ~name:"client" ~sim:!w.sim
                      ~router:!w.router ~mode ~timeout:50.0 ~txn0:!txn_seq ()
                  in
                  run_op (fun () ->
                      (* filled before on_done can fire: a nonempty
                         footprint always resolves asynchronously *)
                      let txid = ref "" in
                      txid :=
                        Store.Txn.execute co ~reads ~writes
                          ~on_done:(fun ~committed ~reads ~writes ~latency ->
                            if committed then begin
                              Fmt.pr
                                "OK  txn %s committed (%s, %.1f time units)@."
                                !txid
                                (Store.Txn.mode_label mode)
                                latency;
                              List.iter
                                (fun (k, vn, v) ->
                                  Fmt.pr "    read  %s = %d (version %d)@." k
                                    v vn)
                                reads;
                              List.iter
                                (fun (k, vn, v) ->
                                  Fmt.pr "    wrote %s := %d (version %d)@." k
                                    v vn)
                                writes
                            end
                            else
                              Fmt.pr
                                "FAIL txn %s aborted (%s) — conflict, no \
                                 quorum, or timeout; after a proposed \
                                 decision this is ambiguous and recovery may \
                                 still commit it@."
                                !txid
                                (Store.Txn.mode_label mode))
                          ());
                  txn_seq := Store.Txn.next_txn co
            in
            (match rest with
            | [] -> (
                match !txn_buf with
                | None -> Fmt.pr "txn: none open (use 'txn begin')@."
                | Some (reads, writes) ->
                    Fmt.pr "txn: open — reads [%s], writes [%s]@."
                      (String.concat "; " (List.rev reads))
                      (String.concat "; "
                         (List.rev_map
                            (fun (k, v) -> Fmt.str "%s := %d" k v)
                            writes)))
            | [ "begin" ] -> (
                match !txn_buf with
                | Some _ ->
                    Fmt.pr "txn: already open (commit or abort it first)@."
                | None ->
                    txn_buf := Some ([], []);
                    Fmt.pr
                      "txn: open (buffering; nothing is sent until commit)@.")
            | [ "read"; key ] -> (
                match !txn_buf with
                | None -> Fmt.pr "txn: none open (use 'txn begin')@."
                | Some ((reads, writes) as buf) ->
                    if in_footprint buf key then
                      Fmt.pr "txn: %s is already in the footprint (keys must \
                              be distinct)@." key
                    else txn_buf := Some (key :: reads, writes))
            | [ "write"; key; v ] -> (
                match int_of_string_opt v with
                | None -> Fmt.pr "value must be an integer@."
                | Some value -> (
                    match !txn_buf with
                    | None -> Fmt.pr "txn: none open (use 'txn begin')@."
                    | Some ((reads, writes) as buf) ->
                        if in_footprint buf key then
                          Fmt.pr "txn: %s is already in the footprint (keys \
                                  must be distinct)@." key
                        else txn_buf := Some (reads, (key, value) :: writes)))
            | [ "abort" ] -> (
                match !txn_buf with
                | None -> Fmt.pr "txn: none open@."
                | Some _ ->
                    txn_buf := None;
                    Fmt.pr "txn: discarded (no replica was touched)@.")
            | [ "commit" ] | [ "commit"; "paxos" ] -> commit `Paxos
            | [ "commit"; "2pc" ] -> commit `Two_phase
            | _ ->
                Fmt.pr "usage: txn [begin | read KEY | write KEY INT | \
                        commit [2pc|paxos] | abort]@.");
            loop ()
        | "nemesis" :: rest ->
            (let text = String.concat " " rest in
             if String.trim text = "" then
               Fmt.pr "usage: nemesis SCRIPT, e.g. nemesis @10 crash r0; @40 \
                       recover r0@."
             else
               match Harness.Script.of_string text with
               | Error e -> Fmt.pr "invalid script: %s@." e
               | Ok script -> (
                   match Harness.Script.validate script with
                   | Error e -> Fmt.pr "invalid script: %s@." e
                   | Ok () -> (
                       let env =
                         {
                           Harness.Run.sim = !w.sim;
                           net = !w.net;
                           groups = !w.groups;
                           clients = [ "client" ];
                           seed = 7;
                         }
                       in
                       (* shard references can still be out of range for
                          this world's layout; install checks eagerly *)
                       try
                         ignore
                           (Harness.Run.install env script
                             : Sim.Failure.t list);
                         !w.nemesis <-
                           !w.nemesis @ [ (Core.now !w.sim, script) ];
                         Fmt.pr
                           "installed %d step(s) relative to t=%.1f: %a@."
                           (List.length script) (Core.now !w.sim)
                           Harness.Script.pp script
                       with Invalid_argument e -> Fmt.pr "%s@." e)));
            loop ()
        | [ "script" ] ->
            (match !w.nemesis with
            | [] -> Fmt.pr "script: none installed@."
            | installed ->
                List.iter
                  (fun (at, script) ->
                    List.iter
                      (fun step ->
                        Fmt.pr "t=%.1f  %s@." at
                          (Harness.Script.step_label step))
                      script)
                  installed);
            loop ()
        | [ "lint" ] ->
            (match lint_world !w with
            | Error e -> Fmt.pr "lint: %s@." e
            | Ok verdicts ->
                List.iter
                  (fun v -> Fmt.pr "%a@." Lint.Quorum_check.pp_verdict v)
                  verdicts;
                let ok v =
                  v.Lint.Quorum_check.legal_rw
                  && v.Lint.Quorum_check.minimize_preserves
                in
                if List.for_all ok verdicts then
                  Fmt.pr "lint: %d shard configuration%s legal@."
                    (List.length verdicts)
                    (if List.length verdicts = 1 then "" else "s")
                else Fmt.pr "lint: ILLEGAL shard configuration@.";
                (* the transaction layer's extra obligation on the
                   same live world *)
                let txn_verdicts = txn_lint !w in
                List.iter
                  (fun (s, ok) ->
                    if not ok then
                      Fmt.pr
                        "txn: shard %d has disjoint prepare (vote) quorums — \
                         two transactions could commit the same version@." s)
                  txn_verdicts;
                if List.for_all snd txn_verdicts then
                  Fmt.pr
                    "txn: prepare (vote) quorums pairwise intersect on every \
                     shard — decided-version uniqueness holds@.");
            loop ()
        | [ "lint"; "static" ] ->
            (* the whole-program passes (`lint.exe analyze`) over the
               compiled lib/ tree: effect taint, handler totality,
               lock-order discipline *)
            (match
               Lint.Analyze.run ~build_dir:"_build/default"
                 ~src_prefixes:[ "lib/" ] ()
             with
            | Error e -> Fmt.pr "lint static: %s@." e
            | Ok [] ->
                Fmt.pr "lint static: clean (%s)@."
                  (String.concat ", " Lint.Analyze.all_rules)
            | Ok findings ->
                Fmt.pr "%s@." (Lint.Report.to_text findings);
                Fmt.pr "lint static: %d finding(s)@." (List.length findings));
            loop ()
        | [ "tune" ] ->
            (* side-effect-free peek: the sample feed (and `top`'s
               window pruning) stays untouched *)
            let snaps = Obs.Health.peek !w.health ~at:(Core.now !w.sim) in
            List.iter
              (fun (snap : Obs.Health.snapshot) ->
                let s = snap.Obs.Health.shard in
                let current = Store.Router.strategy !w.router ~shard:s in
                let live = not (Float.is_nan snap.Obs.Health.read_fraction) in
                let rf =
                  if live then snap.Obs.Health.read_fraction else 0.9
                in
                Fmt.pr "shard %d: strategy %s (epoch %d) | read fraction %s \
                        (%d ops in window)@."
                  s current.Store.Strategy.name
                  (Store.Router.epoch !w.router ~shard:s)
                  (if live then Fmt.str "%.2f" rf else "0.90 (assumed — no ops)")
                  snap.Obs.Health.ops;
                match
                  Store.Autotune.choose ~read_fraction:rf ~p_alive:0.99
                    ~lat:(fun _ -> 1.0)
                    replicas_per_shard
                with
                | None -> Fmt.pr "  optimizer: no admissible candidate@."
                | Some { Store.Autotune.strategy; score } ->
                    Fmt.pr "  optimizer picks %s%s@."
                      strategy.Store.Strategy.name
                      (if
                         String.equal strategy.Store.Strategy.name
                           current.Store.Strategy.name
                       then " (keep)"
                       else " (switch)");
                    Fmt.pr "  predicted %a@." Tune.Model.pp_score score)
              snaps;
            loop ()
        | [ "metrics" ] ->
            Fmt.pr "%s%!" (Obs.Metrics.dump !w.metrics);
            loop ()
        | [ "trace"; path ] ->
            (try
               Obs.Export.write_chrome path !w.tracer;
               Fmt.pr "wrote %d trace events to %s (open in chrome://tracing \
                       or ui.perfetto.dev)@."
                 (Obs.Trace.length !w.tracer) path
             with Sys_error e -> Fmt.pr "cannot write trace: %s@." e);
            loop ()
        | [ "stats" ] ->
            let sum f =
              Array.fold_left
                (fun acc c -> acc + Obs.Metrics.value (f c))
                0
                (Store.Router.clients !w.router)
            in
            let c = Net.counters !w.net in
            let fsyncs =
              List.fold_left
                (fun acc r -> acc + Store.Replica.fsyncs r)
                0 !w.replicas
            in
            Fmt.pr "ops ok=%d failed=%d repairs=%d | msgs sent=%d delivered=%d \
                    dropped=%d (sender_down=%d dest_down=%d link_cut=%d \
                    loss=%d) | fsyncs=%d | sim time %.1f@."
              (sum (fun c -> c.Store.Client.ops_ok))
              (sum (fun c -> c.Store.Client.ops_failed))
              (sum (fun c -> c.Store.Client.repairs_sent))
              c.Net.sent c.delivered c.dropped c.drop_sender_down
              c.drop_dest_down c.drop_link_cut c.drop_loss fsyncs
              (Core.now !w.sim);
            loop ()
        | _ ->
            Fmt.pr "unknown command (try 'help')@.";
            loop ())
  in
  loop ()
