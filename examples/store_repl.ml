(* A driveable replicated-store shell: five simulated replicas under
   majority quorums, controlled by commands on stdin.  Useful for
   poking at quorum behaviour by hand (or from a script).

     put KEY INT        quorum write
     get KEY            quorum read
     crash NODE         e.g. crash r3
     recover NODE
     cut A B            cut the link between two nodes
     heal A B
     dump               print every replica's stored state
     policy             show the RPC retry/hedge policy
     policy retries N   N bounded retries per request (0 disables)
     policy hedge D     hedge to the remaining replicas after D time units
     policy off         back to fire-once (the default)
     loss P             set the network's message-loss probability
     stats              ops / network counters
     metrics            dump the metrics registry
     trace FILE         write the session's Chrome trace (Perfetto)
     help | quit

   Every operation is traced; `trace session.json` writes what
   happened so far, and setting OBS_TRACE=FILE in the environment
   writes the whole session's trace on quit.

   Example:
     printf 'put a 1\ncrash r0\ncrash r1\nput a 2\nget a\nquit\n' \
       | dune exec examples/store_repl.exe *)

module Core = Sim.Core
module Net = Sim.Net

let () =
  let sim = Core.create ~seed:7 in
  let tracer = Obs.Trace.create ~capacity:65536 () in
  Core.attach_tracer sim tracer;
  let metrics = Obs.Metrics.create () in
  let replica_names = List.init 5 (fun i -> Fmt.str "r%d" i) in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ [ "client" ])
      ~latency:(Net.lognormal_latency ~mu:0.7 ~sigma:0.4)
      ()
  in
  let replicas =
    List.map (fun name -> Store.Replica.create ~metrics ~name ()) replica_names
  in
  List.iter (fun r -> Store.Replica.attach r ~net) replicas;
  let client =
    Store.Client.create ~name:"client" ~sim ~net
      ~replicas:(Array.of_list replica_names)
      ~strategy:(Store.Strategy.majority 5)
      ~timeout:50.0 ~read_repair:true ~metrics ()
  in
  Store.Client.attach client;
  Fmt.pr "replicated store: 5 replicas, majority quorums, read repair on.@.";
  Fmt.pr "type 'help' for commands.@.";
  let run_op f =
    f ();
    (* drive the simulation until the operation resolves *)
    Core.run sim
  in
  let rec loop () =
    match In_channel.input_line stdin with
    | None -> ()
    | Some line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "" ] -> loop ()
        | [ "quit" ] | [ "exit" ] ->
            (match Sys.getenv_opt "OBS_TRACE" with
            | Some path -> (
                try
                  Obs.Export.write_chrome path tracer;
                  Fmt.pr "wrote %d trace events to %s@."
                    (Obs.Trace.length tracer) path
                with Sys_error e -> Fmt.pr "cannot write trace: %s@." e)
            | None -> ());
            Fmt.pr "bye.@."
        | [ "help" ] ->
            Fmt.pr
              "put KEY INT | get KEY | crash NODE | recover NODE | cut A B | \
               heal A B | dump | policy [retries N | hedge D | off] | loss P | \
               stats | metrics | trace FILE | quit@.";
            loop ()
        | [ "put"; key; v ] ->
            (match int_of_string_opt v with
            | None -> Fmt.pr "value must be an integer@."
            | Some value ->
                run_op (fun () ->
                    Store.Client.write client ~key ~value
                      ~on_done:(fun ~ok ~vn ~value:_ ~latency ->
                        if ok then
                          Fmt.pr "OK  %s := %d (version %d, %.1f time units)@."
                            key value vn latency
                        else Fmt.pr "FAIL %s := %d (no write quorum)@." key value)));
            loop ()
        | [ "get"; key ] ->
            run_op (fun () ->
                Store.Client.read client ~key
                  ~on_done:(fun ~ok ~vn ~value ~latency ->
                    if ok then
                      Fmt.pr "OK  %s = %d (version %d, %.1f time units)@." key
                        value vn latency
                    else Fmt.pr "FAIL %s (no read quorum)@." key));
            loop ()
        | [ "crash"; node ] ->
            Net.crash net node;
            Fmt.pr "crashed %s@." node;
            loop ()
        | [ "recover"; node ] ->
            Net.recover net node;
            Fmt.pr "recovered %s@." node;
            loop ()
        | [ "cut"; a; b ] ->
            Net.cut_link net a b;
            Fmt.pr "cut %s <-> %s@." a b;
            loop ()
        | [ "heal"; a; b ] ->
            Net.heal_link net a b;
            Fmt.pr "healed %s <-> %s@." a b;
            loop ()
        | [ "dump" ] ->
            List.iter
              (fun (r : Store.Replica.t) ->
                let state =
                  Hashtbl.fold
                    (fun k (vn, v) acc -> Fmt.str "%s=<%d,%d>" k vn v :: acc)
                    r.Store.Replica.data []
                in
                Fmt.pr "%-4s %s %s@." r.Store.Replica.name
                  (if Net.is_up net r.Store.Replica.name then "up  " else "DOWN")
                  (String.concat " " (List.sort compare state)))
              replicas;
            loop ()
        | "policy" :: rest ->
            (* validate before applying: bad values get an error line,
               never an exception *)
            let apply p =
              match Rpc.Policy.validate p with
              | Ok () ->
                  Store.Client.set_policy client p;
                  Fmt.pr "policy: %a@." Rpc.Policy.pp p
              | Error e -> Fmt.pr "invalid policy: %s@." e
            in
            (match rest with
            | [] -> Fmt.pr "policy: %a@." Rpc.Policy.pp (Store.Client.policy client)
            | [ "off" ] -> apply Rpc.Policy.default
            | [ "retries"; n ] -> (
                match int_of_string_opt n with
                | None -> Fmt.pr "invalid policy: retries takes an integer@."
                | Some n ->
                    apply
                      { (Store.Client.policy client) with
                        Rpc.Policy.max_attempts = n + 1 })
            | [ "hedge"; d ] -> (
                match float_of_string_opt d with
                | None -> Fmt.pr "invalid policy: hedge takes a number@."
                | Some d ->
                    apply
                      { (Store.Client.policy client) with
                        Rpc.Policy.hedge_delay = Some d })
            | _ ->
                Fmt.pr "usage: policy [retries N | hedge D | off]@.");
            loop ()
        | [ "loss"; p ] ->
            (match float_of_string_opt p with
            | Some p when p >= 0.0 && p < 1.0 ->
                Net.set_loss net p;
                Fmt.pr "loss: %g@." p
            | _ -> Fmt.pr "loss must be a number in [0, 1)@.");
            loop ()
        | [ "metrics" ] ->
            Fmt.pr "%s%!" (Obs.Metrics.dump metrics);
            loop ()
        | [ "trace"; path ] ->
            (try
               Obs.Export.write_chrome path tracer;
               Fmt.pr "wrote %d trace events to %s (open in chrome://tracing \
                       or ui.perfetto.dev)@."
                 (Obs.Trace.length tracer) path
             with Sys_error e -> Fmt.pr "cannot write trace: %s@." e);
            loop ()
        | [ "stats" ] ->
            let c = Net.counters net in
            Fmt.pr "ops ok=%d failed=%d repairs=%d | msgs sent=%d delivered=%d \
                    dropped=%d (sender_down=%d dest_down=%d link_cut=%d \
                    loss=%d) | sim time %.1f@."
              (Obs.Metrics.value client.Store.Client.ops_ok)
              (Obs.Metrics.value client.ops_failed)
              (Obs.Metrics.value client.repairs_sent)
              c.Net.sent c.delivered c.dropped c.drop_sender_down
              c.drop_dest_down c.drop_link_cut c.drop_loss (Core.now sim);
            loop ()
        | _ ->
            Fmt.pr "unknown command (try 'help')@.";
            loop ())
  in
  loop ()
