(* Reconfiguration end to end, at both levels of the repository.

   Part 1 (formal, Section 4): a logical item whose configuration
   initially lives on a single DM is reconfigured — transparently to
   the user transaction, by a spy-triggered reconfigure-TM — onto a
   two-DM configuration, while the user transaction writes and reads.
   Every run is checked against the Section 4 invariants and the
   simulation onto the non-replicated system A.

   Part 2 (systems, Q4): the simulated replicated store loses two of
   five replicas; write availability collapses under read-one/write-all
   and is restored by reconfiguring onto a majority of the survivors.

   Run with:  dune exec examples/reconfig_failover.exe *)

open Ioa
module Config = Quorum.Config

let () =
  Fmt.pr "=== Part 1: formal reconfiguration (paper Section 4) ===@.";
  let item =
    Recon.Item.make ~name:"x" ~dms:[ "d0"; "d1"; "d2" ] ~initial:(Value.Int 0)
      ~initial_config:
        (Config.make ~read_quorums:[ [ "d0" ] ] ~write_quorums:[ [ "d0" ] ])
      ~candidates:
        [ Config.make ~read_quorums:[ [ "d1" ] ] ~write_quorums:[ [ "d1"; "d2" ] ] ]
  in
  let script =
    {
      Serial.User_txn.children =
        [
          Serial.User_txn.Sub
            ( "worker",
              {
                Serial.User_txn.children =
                  [
                    Serial.User_txn.Access_child
                      (Txn.Access
                         { obj = "x"; kind = Txn.Write; data = Value.Int 99; seq = 0 });
                    Serial.User_txn.Access_child
                      (Txn.Access
                         { obj = "x"; kind = Txn.Read; data = Value.Nil; seq = 1 });
                  ];
                ordered = true;
                eager = false;
                returns = Serial.User_txn.return_all;
              } );
        ];
      ordered = true;
      eager = false;
      returns = Serial.User_txn.return_nil;
    }
  in
  let d =
    {
      Recon.Description.items = [ item ];
      raw_objects = [];
      root_script = script;
      max_recons_per_txn = 2;
    }
  in
  let total_recons = ref 0 in
  for seed = 1 to 10 do
    let run = Recon.Harness.run ~abort_rate:0.0 ~seed d in
    let recons = Recon.Harness.count_recons run.System.schedule in
    total_recons := !total_recons + recons;
    match Recon.Harness.check_all d run.System.schedule with
    | Ok () ->
        Fmt.pr
          "seed %2d: %4d ops, %d reconfiguration(s); invariants + simulation \
           OK@."
          seed
          (List.length run.System.schedule)
          recons
    | Error e -> Fmt.pr "seed %2d: FAILED %s@." seed e
  done;
  Fmt.pr "reconfigurations exercised across seeds: %d@." !total_recons;

  Fmt.pr "@.=== Part 2: reconfiguration in the simulated store (Q4) ===@.";
  Fmt.pr "%-18s %-8s %-8s %-8s@." "phase" "ok" "failed" "success";
  List.iter
    (fun (r : Store.Experiments.reconfig_row) ->
      Fmt.pr "%-18s %-8d %-8d %-8.3f@." r.Store.Experiments.phase r.ok r.failed
        r.rate)
    (Store.Experiments.reconfig_experiment ());
  Fmt.pr
    "@.shape: healthy ~1.0; after two permanent replica failures \
     read-one/write-all writes fail; majority-of-survivors restores ~1.0.@."
